"""Stdlib-only JSON-over-HTTP serving front-end.

No web framework: ``http.server.ThreadingHTTPServer`` gives one thread per
connection, which is all the concurrency the micro-batcher needs — concurrent
``POST /v1/predict`` requests each block in their handler thread while the
:class:`~repro.serve.batching.BatchScheduler` coalesces their samples into one
engine call.

Routes
------
``GET  /v1/healthz``  liveness + model count;
``GET  /v1/readyz``   readiness — 200 while accepting work, 503 once a drain
                      (SIGTERM) has begun, so load balancers stop routing
                      here before in-flight batches finish;
``GET  /v1/models``   registry listing (every registered version);
``GET  /v1/metrics``  per-model counters, latency percentiles, queue depth,
                      cluster fleet stats, shared-memory accounting, and the
                      per-tenant SLO burn-rate block (JSON);
``GET  /metrics``     the same snapshot in Prometheus text exposition;
``POST /v1/predict``  body ``{"model": name?, "features": [...], "top_k": k?,
                      "deadline_ms": ms?}`` — a 1-D ``features`` list is one
                      sample and goes through the micro-batcher; a 2-D list
                      is a client-side batch and runs directly on the engine.
                      ``deadline_ms`` bounds the whole request: past it the
                      server answers 504 instead of returning stale work.

Every error response is machine-readable: ``{"error": message, "code":
slug}`` with ``Retry-After`` on 429/503.  Multi-tenant fleets add three
codes to the taxonomy: ``tenant_rate_limited`` / ``tenant_quota_exceeded``
(429, per-tenant admission — see :mod:`repro.serve.tenancy`) and
``model_unavailable`` (503, the model's cold-load circuit breaker is
open).  The full retry taxonomy (which codes mean *back off*, *retry*, or
*give up*) is documented in ``docs/robustness.md``.

Example::

    curl -s localhost:8080/v1/predict \\
      -d '{"features": [0.1, 0.2, 0.3, 0.4]}'
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import logging
import signal
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.errors import (
    ClusterError,
    DeadlineExceededError,
    DispatcherClosedError,
    WorkerCrashedError,
)
from repro.cluster.shared import SharedModelStore
from repro.faults import FaultPlan
from repro.obs.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.obs.slo import SLOConfig, SLOEngine
from repro.obs.trace import NULL_SPAN, Tracer, get_tracer
from repro.serve.batching import BatchScheduler, SchedulerOverloadedError
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry
from repro.serve.tenancy import (
    CircuitBreaker,
    TenantAdmissionError,
    TenantQuotas,
    retry_after_header,
)
from repro.utils.validation import check_finite

#: Default machine-readable error codes by status; a more specific cause
#: (``draining``, ``worker_crashed``, ...) overrides these at raise sites.
_DEFAULT_CODES = {
    400: "bad_request",
    404: "not_found",
    413: "payload_too_large",
    429: "overloaded",
    500: "internal",
    503: "unavailable",
    504: "deadline_exceeded",
}

#: Statuses that do not spend the tenant's error budget: the client sent a
#: request the server could never have answered (malformed body, unknown
#: model, oversized payload), so counting it against the SLO would let one
#: buggy client page the on-call for a healthy service.
_SLO_EXEMPT_STATUSES = frozenset({400, 404, 413})


class RequestError(Exception):
    """A request-level error carrying an HTTP status plus wire metadata.

    ``code`` is the machine-readable slug clients branch on (defaulting by
    status from :data:`_DEFAULT_CODES`); ``retry_after`` is the
    ``Retry-After`` header value in seconds, defaulted to 1 for the
    back-off statuses (429/503) so every shed or transient failure tells
    clients *when* to come back, not just that they should.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        retry_after: Optional[int] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code or _DEFAULT_CODES.get(status, "error")
        if retry_after is None and status in (429, 503):
            retry_after = 1
        self.retry_after = retry_after


class _PredictionCache:
    """A small thread-safe LRU of ``(labels, scores)`` prediction results.

    Keys carry the model *version*, so promoting a new version naturally
    invalidates the superseded entries (they simply age out).  Values are
    the result arrays, not response dictionaries — the response is rebuilt
    per request so latency numbers stay honest.
    """

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: tuple, value: Tuple[np.ndarray, np.ndarray]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ServeApp:
    """The serving application: registry + metrics + per-model schedulers.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` to resolve model names against.
    metrics:
        Optional shared :class:`MetricsRegistry` (created when omitted).
    max_batch_size / max_wait_ms / num_workers:
        Micro-batching configuration applied to every model's scheduler.
    num_processes:
        When > 0, batches execute on a :class:`ClusterDispatcher` of this
        many worker processes sharing the packed model bank through
        ``multiprocessing.shared_memory`` (one dispatcher per promoted
        model version; dense-mode models transparently stay in-process).
    transport:
        Cluster data plane for shard payloads — ``"pipe"`` (default),
        ``"shm"`` (shared-memory rings; pipes carry only control frames),
        or ``"tcp"`` (framed localhost sockets).  Ignored when
        ``num_processes == 0``.  See :mod:`repro.cluster.transport`.
    cache_size:
        Entry cap for the request-level LRU prediction cache keyed by
        ``(model, version, top_k, payload hash)``; ``0`` disables caching.
    max_queue_depth:
        Admission bound on each model's scheduler queue: requests beyond it
        are shed with 429 + ``Retry-After`` instead of queueing unboundedly
        (``None`` keeps the legacy unbounded behaviour).
    max_concurrent:
        Per-model cap on requests in flight (scheduler *and* direct 2-D
        paths); excess requests are shed with 429.  ``None`` disables.
    tenant_quotas:
        Optional :class:`~repro.serve.tenancy.TenantQuotas` gating every
        predict on its tenant (model name): an empty token bucket answers
        429 ``tenant_rate_limited``, a full concurrency quota 429
        ``tenant_quota_exceeded`` — both with a ``Retry-After`` hint.
    max_resident_banks:
        Fleet residency cap: at most this many cluster dispatchers (each
        owning one shared packed bank plus its worker pool) stay live; the
        least-recently-used one is closed when a cold load would exceed the
        cap, and the shared store is created with the same ``max_resident``
        so bank segments page out under the identical bound.  ``None``
        (default) keeps every dispatcher resident.  Re-building an evicted
        model on its next request is a *cold load*: timed into the
        ``cold_load`` stage histogram and counted in the fleet metrics.
    cold_load_retries:
        Transient cold-load failures (worker startup races, ...) are
        retried this many times with capped exponential backoff before the
        request fails.
    breaker_threshold / breaker_reset_seconds:
        Per-model circuit breaker over cold loads: after
        ``breaker_threshold`` consecutive exhausted cold-load failures the
        model fails fast with 503 ``model_unavailable`` until
        ``breaker_reset_seconds`` admit a half-open probe.
    default_deadline_ms:
        Deadline applied to requests that do not send ``deadline_ms``
        themselves; ``None`` means no implicit deadline.
    request_timeout:
        Seconds the cluster dispatcher waits for a worker's shard reply
        before the hung-worker watchdog terminates and respawns it.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` handed to every
        dispatcher for deterministic chaos testing (also activates via the
        ``REPRO_FAULTS`` environment variable).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  Each sampled
        ``/v1/predict`` request becomes one trace: a ``request`` root span
        with ``validate`` / ``cache_lookup`` / ``respond`` children here,
        stitched to the scheduler's ``queue_wait`` / ``batch_execute``
        spans and — under ``num_processes > 0`` — the dispatcher's
        ``dispatch`` / per-worker ``worker:score`` / ``merge`` spans.
        Defaults to the process-wide tracer (disabled unless configured).
    slo_config:
        Optional :class:`~repro.obs.slo.SLOConfig` with per-tenant
        availability/latency objectives (usually loaded from the
        ``--slo-config`` JSON file).  The app always runs an
        :class:`~repro.obs.slo.SLOEngine` — omitting the config applies the
        fleet-default objective to every tenant.  Every completed predict
        is recorded per tenant (model name); client faults (400/404/413)
        are exempt.  The engine's snapshot is the ``slo`` block of
        ``/v1/metrics`` and burn-rate alerts log on ``repro.serve.slo``.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        metrics: Optional[MetricsRegistry] = None,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        num_workers: int = 1,
        num_processes: int = 0,
        transport: str = "pipe",
        cache_size: int = 1024,
        max_queue_depth: Optional[int] = None,
        max_concurrent: Optional[int] = None,
        tenant_quotas: Optional[TenantQuotas] = None,
        max_resident_banks: Optional[int] = None,
        cold_load_retries: int = 2,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
        default_deadline_ms: Optional[float] = None,
        request_timeout: float = 60.0,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        slo_config: Optional[SLOConfig] = None,
    ):
        if num_processes < 0:
            raise ValueError(f"num_processes must be >= 0, got {num_processes}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_resident_banks is not None and max_resident_banks < 1:
            raise ValueError(
                f"max_resident_banks must be >= 1, got {max_resident_banks}"
            )
        if cold_load_retries < 0:
            raise ValueError(
                f"cold_load_retries must be >= 0, got {cold_load_retries}"
            )
        self.registry = registry
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.num_processes = int(num_processes)
        self.transport = transport
        self.max_concurrent = max_concurrent
        self.tenant_quotas = tenant_quotas
        self.max_resident_banks = (
            None if max_resident_banks is None else int(max_resident_banks)
        )
        self.cold_load_retries = int(cold_load_retries)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_seconds = float(breaker_reset_seconds)
        self.default_deadline_ms = default_deadline_ms
        self.request_timeout = float(request_timeout)
        self.fault_plan = fault_plan
        self.slo = SLOEngine(slo_config)
        self._batch_config = dict(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            num_workers=num_workers,
            max_queue_depth=max_queue_depth,
        )
        self._schedulers: Dict[str, BatchScheduler] = {}
        self._lock = threading.Lock()
        self._cache = _PredictionCache(cache_size) if cache_size else None
        self._admission: Dict[str, threading.BoundedSemaphore] = {}
        #: name -> (promoted version, dispatcher or None for dense fallback)
        self._dispatchers: Dict[str, Tuple[int, Optional[ClusterDispatcher]]] = {}
        self._cluster_lock = threading.Lock()
        self._store: Optional[SharedModelStore] = None
        #: single-flight cold loads: one build lock per model name, so a
        #: thundering herd on a paged-out tenant spawns exactly one pool.
        self._build_locks: Dict[str, threading.Lock] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._dispatcher_clock = itertools.count(1)
        self._dispatcher_last_used: Dict[str, int] = {}
        self._cold_loads = 0
        self._draining = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # ----------------------------------------------------------------- routes
    def healthz(self) -> dict:
        return {"status": "ok", "models": len(self.registry.names())}

    def readyz(self) -> Tuple[int, dict]:
        """Readiness: ``(200, ...)`` while accepting work, ``(503, ...)``
        once a drain has begun (load balancers stop routing here while
        in-flight batches finish)."""
        if self._draining:
            return 503, {"status": "draining", "inflight": self._inflight}
        return 200, {"status": "ready", "models": len(self.registry.names())}

    def models(self) -> dict:
        return {"models": self.registry.list_models()}

    def metrics_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        if self._cache is not None:
            snapshot["prediction_cache"] = {
                "entries": len(self._cache),
                "max_entries": self._cache.max_entries,
            }
        with self._lock:
            schedulers = dict(self._schedulers)
        if schedulers:
            snapshot["schedulers"] = {
                name: {"queue_depth": scheduler.queue_depth}
                for name, scheduler in schedulers.items()
            }
        with self._cluster_lock:
            dispatchers = [d for _, d in self._dispatchers.values() if d is not None]
            store = self._store
            cold_loads = self._cold_loads
            breakers = {
                name: breaker.snapshot() for name, breaker in self._breakers.items()
            }
        if dispatchers:
            snapshot["cluster"] = {d.name: d.info() for d in dispatchers}
        if store is not None:
            snapshot["shared_memory"] = {
                "segments": len(store),
                "resident_bytes": store.resident_bytes,
                "stats_slabs": sum(d.num_workers for d in dispatchers),
            }
            fleet = dict(store.stats())
            fleet["cold_loads"] = cold_loads
            fleet["dispatchers"] = len(dispatchers)
            fleet["max_resident_banks"] = self.max_resident_banks
            fleet["bank_restores"] = sum(d.bank_restores for d in dispatchers)
            if breakers:
                fleet["breakers"] = breakers
            snapshot["fleet"] = fleet
        if self.tenant_quotas is not None:
            snapshot["tenancy"] = self.tenant_quotas.snapshot()
        snapshot["slo"] = self.slo.snapshot()
        return snapshot

    def predict(self, payload: dict) -> dict:
        """Handle one ``POST /v1/predict`` payload.

        Sampled requests become one trace: this opens the ``request`` root
        span (the sampling decision for the whole tree) and every stage
        below — local or across the cluster's worker pipes — stitches under
        it.  Exceptions mark the root span with an ``error`` attribute on
        the way out.
        """
        if self._draining:
            raise RequestError(
                503, "server is draining; retry another replica", code="draining"
            )
        with self._track_inflight():
            with self.tracer.start_span(
                "request", attrs={"route": "/v1/predict"}
            ) as root:
                return self._predict(payload, root)

    @contextlib.contextmanager
    def _track_inflight(self):
        """Count requests between admission and response so :meth:`drain`
        knows when the last in-flight batch has finished."""
        with self._inflight_cv:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    @staticmethod
    def _validate_predict_payload(
        payload: dict,
        registry: ModelRegistry,
        default_deadline_ms: Optional[float] = None,
    ) -> Tuple[str, int, np.ndarray, Optional[float]]:
        """Parse and validate one predict payload →
        ``(name, top_k, features, absolute monotonic deadline or None)``."""
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        name = payload.get("model")
        if name is None:
            names = registry.names()
            if len(names) != 1:
                raise RequestError(
                    400,
                    "the 'model' field is required when "
                    f"{len(names)} models are registered",
                )
            name = names[0]
        if name not in registry:
            raise RequestError(404, f"unknown model {name!r}")
        top_k = payload.get("top_k", 1)
        if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
            raise RequestError(400, "'top_k' must be a positive integer")
        try:
            features = np.asarray(payload["features"], dtype=np.float64)
        except KeyError:
            raise RequestError(400, "the 'features' field is required")
        except (TypeError, ValueError):
            # Covers non-numeric entries and ragged rows (NumPy refuses the
            # inhomogeneous nesting) — a clean 400, never a stack trace.
            raise RequestError(
                400, "'features' must be a rectangular numeric array"
            )
        if features.ndim not in (1, 2):
            raise RequestError(
                400, f"'features' must be 1-D or 2-D, got {features.ndim}-D"
            )
        try:
            check_finite(features, "'features'")
        except ValueError as error:
            raise RequestError(400, str(error))
        deadline_ms = payload.get("deadline_ms", default_deadline_ms)
        deadline = None
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise RequestError(400, "'deadline_ms' must be a positive number")
            deadline = time.monotonic() + float(deadline_ms) / 1e3
        return name, top_k, features, deadline

    def _predict(self, payload: dict, root) -> dict:
        sampled = root.sampled
        tracer = self.tracer
        validate_started = time.perf_counter()
        try:
            with tracer.start_span("validate") if sampled else NULL_SPAN:
                name, top_k, features, deadline = self._validate_predict_payload(
                    payload, self.registry, self.default_deadline_ms
                )
        except RequestError as error:
            # Validation failures happen before the tenant name is resolved;
            # attribute the access-log line to the *requested* model so bad
            # traffic is still traceable to its sender.
            requested = payload.get("model") if isinstance(payload, dict) else None
            if isinstance(requested, str):
                error.tenant = requested
            if sampled:
                error.trace_id = root.trace_id
            raise
        started = time.perf_counter()
        model_metrics = self.metrics.for_model(name)
        model_metrics.record_stage("validate", started - validate_started)
        root.set("model", name)
        root.set("rows", int(features.shape[0]) if features.ndim == 2 else 1)
        # Tenant admission is the outer gate: the per-tenant token bucket and
        # concurrency quota shed *before* the request can touch the shared
        # scheduler/worker capacity the other tenants are using.
        try:
            lease = None
            if self.tenant_quotas is not None:
                try:
                    lease = self.tenant_quotas.admit(name)
                except TenantAdmissionError as error:
                    model_metrics.record_shed()
                    model_metrics.record_error()
                    raise RequestError(
                        429,
                        str(error),
                        code=error.code,
                        retry_after=retry_after_header(error.retry_after),
                    )
            try:
                slot = self._admission_slot(name)
                if slot is not None and not slot.acquire(blocking=False):
                    model_metrics.record_shed()
                    model_metrics.record_error()
                    raise RequestError(
                        429,
                        f"model {name!r} is at its concurrency limit "
                        f"({self.max_concurrent} in flight)",
                        code="overloaded",
                    )
                try:
                    response = self._execute(
                        name, top_k, features, deadline, model_metrics, started, root
                    )
                finally:
                    if slot is not None:
                        slot.release()
            finally:
                if lease is not None:
                    lease.release()
        except RequestError as error:
            # Stamp the tenant / trace onto the error so the access log can
            # carry them even though the response body never sees the model.
            error.tenant = name
            if sampled:
                error.trace_id = root.trace_id
            if error.status not in _SLO_EXEMPT_STATUSES:
                self.slo.record(
                    name, ok=False, latency_s=time.perf_counter() - started
                )
            raise
        self.slo.record(name, ok=True, latency_s=time.perf_counter() - started)
        return response

    def _admission_slot(self, name: str) -> Optional[threading.BoundedSemaphore]:
        if self.max_concurrent is None:
            return None
        with self._lock:
            slot = self._admission.get(name)
            if slot is None:
                slot = threading.BoundedSemaphore(self.max_concurrent)
                self._admission[name] = slot
            return slot

    def _execute(
        self,
        name: str,
        top_k: int,
        features: np.ndarray,
        deadline: Optional[float],
        model_metrics,
        started: float,
        root,
    ) -> dict:
        sampled = root.sampled
        tracer = self.tracer
        cache_key = None
        if self._cache is not None:
            lookup_started = time.perf_counter()
            with tracer.start_span("cache_lookup") if sampled else NULL_SPAN:
                cache_key = (
                    name,
                    self.registry.default_version(name),
                    top_k,
                    features.shape,
                    hashlib.sha1(features.tobytes()).hexdigest(),
                )
                cached = self._cache.get(cache_key)
            model_metrics.record_stage(
                "cache_lookup", time.perf_counter() - lookup_started
            )
            if cached is not None:
                model_metrics.record_cache_hit()
                root.set("cache", "hit")
                labels, scores = cached
                return self._respond(
                    name, labels, scores, top_k, started, root, cached=True
                )
            model_metrics.record_cache_miss()

        try:
            for attempt in (0, 1):
                try:
                    if deadline is not None and time.monotonic() >= deadline:
                        raise DeadlineExceededError(
                            "deadline expired before execution"
                        )
                    if features.ndim == 1:
                        # The request crosses into the collector thread here,
                        # so the root context is handed over explicitly;
                        # ambient nesting resumes inside the scheduler's
                        # executor thread.
                        labels, scores = self.scheduler_for(name).top_k(
                            features, k=top_k, trace=root.context, deadline=deadline
                        )
                        labels, scores = labels[None, :], scores[None, :]
                        batched = True
                    else:
                        engine = self.engine_for(name)
                        kwargs = {}
                        if deadline is not None and getattr(
                            engine, "accepts_deadline", False
                        ):
                            kwargs["deadline"] = deadline
                        labels, scores = engine.top_k(features, k=top_k, **kwargs)
                        batched = False
                    break
                except DispatcherClosedError:
                    # Hot-swap / eviction race: this request resolved a
                    # dispatcher that a concurrent promote or LRU eviction
                    # closed before the batch ran.  The swap has finished, so
                    # re-resolving lands on the new pool — retry once
                    # in-process (scoring is idempotent and the deadline
                    # check above still governs) instead of bouncing a
                    # retryable 503 off the client.
                    if attempt:
                        raise
            if deadline is not None and time.monotonic() >= deadline:
                # The answer exists but arrived late — a deadline is a
                # promise, so the caller gets 504, not stale work.
                raise DeadlineExceededError("request completed after its deadline")
        except RequestError:
            model_metrics.record_error()
            raise
        except SchedulerOverloadedError as error:
            model_metrics.record_shed()
            model_metrics.record_error()
            raise RequestError(429, str(error), code="overloaded")
        except DeadlineExceededError as error:
            model_metrics.record_deadline()
            model_metrics.record_error()
            raise RequestError(504, str(error), code="deadline_exceeded")
        except WorkerCrashedError as error:
            model_metrics.record_error()
            raise RequestError(
                503,
                f"inference worker crashed and was respawned; retry ({error})",
                code="worker_crashed",
            )
        except DispatcherClosedError:
            # Hot-swap race: this request resolved a dispatcher that a
            # concurrent promote closed before the batch ran.  The swap has
            # finished, so a retry lands on the new version.
            model_metrics.record_error()
            raise RequestError(
                503, "model version was swapped mid-request; retry", code="model_swapped"
            )
        except ClusterError as error:
            # Residual cluster-tier failures (double transport faults, ...):
            # the pool heals on the next request, so they are retryable.
            model_metrics.record_error()
            raise RequestError(
                503, f"cluster fault; retry ({error})", code="cluster_fault"
            )
        except ValueError as error:
            model_metrics.record_error()
            raise RequestError(400, str(error))
        elapsed = time.perf_counter() - started
        # Scheduler batches already record engine latency; the request-level
        # numbers below include queueing, which is what callers experience.
        if not batched:
            model_metrics.record_request(
                features.shape[0],
                elapsed,
                trace_id=root.trace_id if sampled else None,
            )
        if cache_key is not None:
            self._cache.put(cache_key, (labels, scores))
        return self._respond(name, labels, scores, top_k, started, root)

    def _respond(
        self,
        name: str,
        labels: np.ndarray,
        scores: np.ndarray,
        top_k: int,
        started: float,
        root,
        cached: bool = False,
    ) -> dict:
        """Build the response under a ``respond`` span; sampled requests get
        their ``trace_id`` echoed so clients can find their trace."""
        with self.tracer.start_span("respond") if root.sampled else NULL_SPAN:
            response = self._build_response(
                name, labels, scores, top_k, started, cached=cached
            )
            if root.sampled:
                response["trace_id"] = root.trace_id
        return response

    @staticmethod
    def _build_response(
        name: str,
        labels: np.ndarray,
        scores: np.ndarray,
        top_k: int,
        started: float,
        cached: bool = False,
    ) -> dict:
        response = {
            "model": name,
            "labels": [int(row[0]) for row in labels],
            "latency_ms": (time.perf_counter() - started) * 1e3,
        }
        if cached:
            response["cached"] = True
        if top_k > 1:
            response["top_k_labels"] = labels.astype(int).tolist()
            response["top_k_scores"] = scores.astype(float).tolist()
        else:
            response["scores"] = [float(row[0]) for row in scores]
        return response

    # ------------------------------------------------------------- schedulers
    def scheduler_for(self, name: str) -> BatchScheduler:
        """The (lazily created) micro-batch scheduler for model *name*."""
        with self._lock:
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                scheduler = BatchScheduler(
                    lambda: self.engine_for(name),
                    metrics=self.metrics.for_model(name),
                    tracer=self.tracer,
                    **self._batch_config,
                )
                self._schedulers[name] = scheduler
            return scheduler

    # ---------------------------------------------------------------- cluster
    def engine_for(self, name: str):
        """The batch executor for *name*.

        The in-process registry engine by default; with ``num_processes > 0``
        the model's :class:`ClusterDispatcher` (same ``top_k`` surface), so
        both the micro-batcher and direct 2-D requests shard across the
        worker pool.
        """
        if self.num_processes <= 0:
            return self.registry.get(name)
        return self._dispatcher_for(name)

    def _dispatcher_for(self, name: str):
        engine = self.registry.get(name)  # loads + resolves promoted version
        version = self.registry.default_version(name)
        with self._cluster_lock:
            entry = self._dispatchers.get(name)
            if entry is not None and entry[0] == version:
                self._dispatcher_last_used[name] = next(self._dispatcher_clock)
                dispatcher = entry[1]
                return dispatcher if dispatcher is not None else engine
            if self._store is None:
                self._store = SharedModelStore(
                    max_resident=self.max_resident_banks
                )
            store = self._store
            build_lock = self._build_locks.setdefault(name, threading.Lock())
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    threshold=self.breaker_threshold,
                    reset_seconds=self.breaker_reset_seconds,
                )
        wait = breaker.check()
        if wait is not None:
            raise RequestError(
                503,
                f"model {name!r} is unavailable "
                "(cold-load circuit breaker is open)",
                code="model_unavailable",
                retry_after=retry_after_header(wait),
            )
        # Spawning workers and waiting for their ready handshakes can take
        # seconds; the per-name build lock keeps that out of the cluster lock
        # (every other model and /v1/metrics keep serving) while still
        # single-flighting a thundering herd on one cold tenant — the losers
        # block here, then find the winner's dispatcher on re-check.
        with build_lock:
            with self._cluster_lock:
                entry = self._dispatchers.get(name)
                if entry is not None and entry[0] == version:
                    self._dispatcher_last_used[name] = next(self._dispatcher_clock)
                    dispatcher = entry[1]
                    return dispatcher if dispatcher is not None else engine
            try:
                dispatcher = self._build_dispatcher(name, version, engine, store)
            except ValueError:
                # Dense-mode engines (no packed bank to share) stay in-process.
                dispatcher = None
            breaker.record_success()
            with self._cluster_lock:
                stale = self._dispatchers.get(name)
                self._dispatchers[name] = (version, dispatcher)
                self._dispatcher_last_used[name] = next(self._dispatcher_clock)
                evicted = self._over_cap_dispatchers_locked(keep=name)
            if stale is not None and stale[1] is not None:
                # The superseded version's workers; close() waits behind the
                # dispatcher's own lock for any in-flight batch to finish.
                stale[1].close()
            for old in evicted:
                old.close()
            return dispatcher if dispatcher is not None else engine

    def _build_dispatcher(self, name: str, version: int, engine, store):
        """Cold-load one model's worker pool: retry transient failures with
        capped exponential backoff, time the winning attempt into the
        ``cold_load`` stage histogram, and convert exhaustion into 503
        ``model_unavailable`` (after informing the circuit breaker).

        ``ValueError`` passes straight through — that is the dense-mode
        "no packed bank" signal, a fallback, not a failure.
        """
        last_error = None
        for attempt in range(self.cold_load_retries + 1):
            if attempt:
                time.sleep(min(0.05 * 2 ** (attempt - 1), 1.0))
            started = time.perf_counter()
            try:
                dispatcher = ClusterDispatcher(
                    engine,
                    num_workers=self.num_processes,
                    store=store,
                    name=f"{name}@v{version}",
                    transport=self.transport,
                    # Cold loads sit in the request path: a worker that is
                    # not up within 10s is pathological — fail the attempt
                    # (typed, retried) rather than stall the tenant's whole
                    # queue for the cluster-default 60s.
                    startup_timeout=10.0,
                    request_timeout=self.request_timeout,
                    fault_plan=self.fault_plan,
                    tracer=self.tracer,
                    metrics=self.metrics.for_model(name),
                )
            except ValueError:
                raise
            except Exception as error:
                last_error = error
                continue
            self.metrics.for_model(name).record_stage(
                "cold_load", time.perf_counter() - started
            )
            with self._cluster_lock:
                self._cold_loads += 1
            return dispatcher
        self._breakers[name].record_failure()
        raise RequestError(
            503,
            f"model {name!r} failed to cold-load after "
            f"{self.cold_load_retries + 1} attempts ({last_error})",
            code="model_unavailable",
        )

    def _over_cap_dispatchers_locked(self, keep: str):
        """LRU dispatchers to close so live pools fit ``max_resident_banks``.

        Called under ``_cluster_lock``; pops the victims from the map (so no
        new request resolves them) and returns them for the caller to close
        *outside* the lock.  Closing releases the victim's shared bank (the
        store unlinks it at refcount zero) and reaps its workers, which is
        what actually bounds fleet memory.  The entry being installed
        (``keep``) is never a victim; dense fallbacks hold no bank and never
        count.
        """
        if self.max_resident_banks is None:
            return []
        live = [
            (self._dispatcher_last_used.get(key, 0), key)
            for key, (_, dispatcher) in self._dispatchers.items()
            if dispatcher is not None and key != keep
        ]
        kept = self._dispatchers.get(keep)
        count = len(live) + (1 if kept is not None and kept[1] is not None else 0)
        excess = count - self.max_resident_banks
        if excess <= 0:
            return []
        live.sort()
        evicted = []
        for _, key in live[:excess]:
            _, dispatcher = self._dispatchers.pop(key)
            self._dispatcher_last_used.pop(key, None)
            evicted.append(dispatcher)
        return evicted

    # ------------------------------------------------------------------- drain
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Flip readiness off and start refusing new predict requests.

        Idempotent and instant — the actual teardown happens in
        :meth:`drain` once in-flight requests finish.
        """
        self._draining = True

    def drain(self, grace_seconds: float = 10.0) -> None:
        """Graceful shutdown: refuse new work, wait out in-flight requests
        (up to *grace_seconds*), then :meth:`close` everything.

        The SIGTERM sequence: ``begin_drain`` flips ``/v1/readyz`` to 503 so
        the balancer stops routing here, requests already admitted keep
        their batches, and only then do schedulers stop, worker pools exit,
        and shared-memory segments unlink.
        """
        self.begin_drain()
        deadline = time.monotonic() + float(grace_seconds)
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:  # pragma: no cover - stuck in-flight work
                    break
                self._inflight_cv.wait(timeout=remaining)
        self.close()

    def close(self) -> None:
        """Stop schedulers, worker pools, and shared segments (in that order)."""
        with self._lock:
            schedulers, self._schedulers = list(self._schedulers.values()), {}
        for scheduler in schedulers:
            scheduler.stop()
        with self._cluster_lock:
            dispatchers, self._dispatchers = list(self._dispatchers.values()), {}
            store, self._store = self._store, None
            self._dispatcher_last_used.clear()
        for _, dispatcher in dispatchers:
            if dispatcher is not None:
                dispatcher.close()
        if store is not None:
            store.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`ServeApp` on ``self.server.app``."""

    protocol_version = "HTTP/1.1"
    #: Maximum accepted request body (guards against unbounded reads).
    max_body_bytes = 64 * 1024 * 1024

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Stdlib diagnostics (malformed request lines, broken pipes) used to
        # be silently discarded here; route them through the access logger
        # instead so ``--log-level`` surfaces them.
        logger = getattr(self.server, "access_logger", None)
        if logger is not None:
            logger.warning(format % args)
        elif getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def log_request(self, code="-", size="-") -> None:
        # The stdlib per-request line is superseded by the structured access
        # log below (which adds duration and survives log aggregation).
        pass

    def _log_access(
        self,
        method: str,
        status: int,
        started: float,
        code: Optional[str] = None,
        tenant: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        """One structured line per answered request (when logging is on).

        Error responses append their machine-readable ``code=`` so shed
        (429/overloaded) and timed-out (504/deadline_exceeded) requests are
        greppable in aggregated logs without parsing response bodies.
        Predicts that resolved a model append ``tenant=``, and sampled
        requests append ``trace_id=`` — the same ID the trace file and the
        metrics exemplars carry, so one grep pivots between all three.
        """
        logger = getattr(self.server, "access_logger", None)
        if logger is None or not logger.isEnabledFor(logging.INFO):
            return
        suffix = "" if code is None else f" code={code}"
        if tenant is not None:
            suffix += f" tenant={tenant}"
        if trace_id is not None:
            suffix += f" trace_id={trace_id}"
        logger.info(
            "method=%s path=%s status=%d dur_ms=%.3f client=%s%s",
            method,
            self.path,
            status,
            (time.perf_counter() - started) * 1e3,
            self.client_address[0],
            suffix,
        )

    # ------------------------------------------------------------------ verbs
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        try:
            if self.path == "/v1/healthz":
                status = self._send_json(200, self.app.healthz())
            elif self.path == "/v1/readyz":
                ready_status, body = self.app.readyz()
                status = self._send_json(ready_status, body)
            elif self.path == "/v1/models":
                status = self._send_json(200, self.app.models())
            elif self.path == "/v1/metrics":
                status = self._send_json(200, self.app.metrics_snapshot())
            elif self.path == "/metrics":
                status = self._send_text(
                    200,
                    render_prometheus(self.app.metrics_snapshot()),
                    _PROMETHEUS_CONTENT_TYPE,
                )
            else:
                status = self._send_json(
                    404, {"error": f"no route {self.path!r}", "code": "not_found"}
                )
        except Exception:  # pragma: no cover - defensive
            status = self._send_internal_error()
        self._log_access("GET", status, started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        code: Optional[str] = None
        tenant: Optional[str] = None
        trace_id: Optional[str] = None
        try:
            if self.path != "/v1/predict":
                raise RequestError(404, f"no route {self.path!r}")
            payload = self._read_json()
            response = self.app.predict(payload)
            tenant = response.get("model")
            trace_id = response.get("trace_id")
            status = self._send_json(200, response)
        except RequestError as error:
            code = error.code
            tenant = getattr(error, "tenant", None)
            trace_id = getattr(error, "trace_id", None)
            status = self._send_json(
                error.status,
                {"error": str(error), "code": code},
                retry_after=error.retry_after,
            )
        except Exception:
            # Unexpected failures answer with a fixed JSON body: no stack
            # trace, no exception internals — those go to the server log
            # (when verbose), never over the wire.
            code = "internal"
            status = self._send_internal_error()
        self._log_access(
            "POST", status, started, code=code, tenant=tenant, trace_id=trace_id
        )

    def _send_internal_error(self) -> int:
        import traceback

        logger = getattr(self.server, "access_logger", None)
        if logger is not None:  # pragma: no cover - unexpected-failure path
            logger.exception("unhandled error serving %s", self.path)
        elif getattr(self.server, "verbose", False):  # pragma: no cover
            traceback.print_exc()
        return self._send_json(
            500, {"error": "internal server error", "code": "internal"}
        )

    # ---------------------------------------------------------------- helpers
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise RequestError(400, "a JSON request body is required")
        if length > self.max_body_bytes:
            raise RequestError(413, "request body too large")
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise RequestError(400, f"invalid JSON body: {error}")

    def _send_json(
        self, status: int, payload: dict, retry_after: Optional[int] = None
    ) -> int:
        body = json.dumps(payload).encode("utf-8")
        return self._send_body(
            status, body, "application/json", retry_after=retry_after
        )

    def _send_text(self, status: int, text: str, content_type: str) -> int:
        return self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        retry_after: Optional[int] = None,
    ) -> int:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(int(retry_after)))
        if status >= 400:
            # The request body may not have been (fully) read on error paths;
            # on a keep-alive connection the leftover bytes would be parsed as
            # the next request line, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        return status


def create_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    log_level: Optional[str] = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    Pass ``port=0`` to bind an ephemeral port (``server.server_address[1]``
    reports the one chosen) — the integration tests rely on this.

    ``log_level`` (``"debug"`` / ``"info"`` / ``"warning"`` / ...) enables
    the structured access log on the ``repro.serve.access`` logger: one
    ``method= path= status= dur_ms= client=`` line per answered request,
    plus stdlib HTTP diagnostics as warnings.  ``None`` keeps the server
    silent (the default, and what the benchmarks want).
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.app = app  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.access_logger = None  # type: ignore[attr-defined]
    if log_level is not None:
        level = getattr(logging, str(log_level).upper(), None)
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {log_level!r}")
        logger = logging.getLogger("repro.serve.access")
        logger.setLevel(level)
        if not logger.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
            )
            logger.addHandler(handler)
        server.access_logger = logger  # type: ignore[attr-defined]
    return server


def run_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    log_level: Optional[str] = None,
) -> None:  # pragma: no cover - blocking loop, exercised manually / by CLI
    """Run the server until interrupted, then drain and flush schedulers.

    ``SIGTERM`` triggers a graceful drain: ``/v1/readyz`` flips to 503 so a
    load balancer stops routing here, new ``/v1/predict`` calls answer 503
    ``draining``, in-flight requests finish, and only then do the worker
    pools shut down and the shared-memory segments unlink.
    """
    server = create_server(
        app, host=host, port=port, verbose=verbose, log_level=log_level
    )

    def _handle_sigterm(signum, frame):  # noqa: ARG001 - signal signature
        app.begin_drain()
        # shutdown() blocks until serve_forever returns, so it must run off
        # the signal-handler (main) thread to avoid deadlocking the loop.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handler = signal.signal(signal.SIGTERM, _handle_sigterm)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.serve listening on http://{bound_host}:{bound_port}")
    for row in app.registry.list_models():
        marker = "*" if row["default"] else " "
        print(f"  {marker} {row['name']} v{row['version']} ({row['strategy']})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous_handler)
        server.server_close()
        app.drain()


__all__ = ["ServeApp", "RequestError", "create_server", "run_server"]
