"""Stdlib-only JSON-over-HTTP serving front-end.

No web framework: ``http.server.ThreadingHTTPServer`` gives one thread per
connection, which is all the concurrency the micro-batcher needs — concurrent
``POST /v1/predict`` requests each block in their handler thread while the
:class:`~repro.serve.batching.BatchScheduler` coalesces their samples into one
engine call.

Routes
------
``GET  /v1/healthz``  liveness + model count;
``GET  /v1/models``   registry listing (every registered version);
``GET  /v1/metrics``  per-model counters and latency percentiles;
``POST /v1/predict``  body ``{"model": name?, "features": [...], "top_k": k?}``
                      — a 1-D ``features`` list is one sample and goes through
                      the micro-batcher; a 2-D list is a client-side batch and
                      runs directly on the engine.

Example::

    curl -s localhost:8080/v1/predict \\
      -d '{"features": [0.1, 0.2, 0.3, 0.4]}'
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

import numpy as np

from repro.serve.batching import BatchScheduler
from repro.serve.metrics import MetricsRegistry
from repro.serve.registry import ModelRegistry


class RequestError(Exception):
    """A client error carrying an HTTP status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeApp:
    """The serving application: registry + metrics + per-model schedulers.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` to resolve model names against.
    metrics:
        Optional shared :class:`MetricsRegistry` (created when omitted).
    max_batch_size / max_wait_ms / num_workers:
        Micro-batching configuration applied to every model's scheduler.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        metrics: Optional[MetricsRegistry] = None,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        num_workers: int = 1,
    ):
        self.registry = registry
        self.metrics = metrics or MetricsRegistry()
        self._batch_config = dict(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            num_workers=num_workers,
        )
        self._schedulers: Dict[str, BatchScheduler] = {}
        self._lock = threading.Lock()

    # ----------------------------------------------------------------- routes
    def healthz(self) -> dict:
        return {"status": "ok", "models": len(self.registry.names())}

    def models(self) -> dict:
        return {"models": self.registry.list_models()}

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    def predict(self, payload: dict) -> dict:
        """Handle one ``POST /v1/predict`` payload."""
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        name = payload.get("model")
        if name is None:
            names = self.registry.names()
            if len(names) != 1:
                raise RequestError(
                    400,
                    "the 'model' field is required when "
                    f"{len(names)} models are registered",
                )
            name = names[0]
        if name not in self.registry:
            raise RequestError(404, f"unknown model {name!r}")
        top_k = payload.get("top_k", 1)
        if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k < 1:
            raise RequestError(400, "'top_k' must be a positive integer")
        try:
            features = np.asarray(payload["features"], dtype=np.float64)
        except KeyError:
            raise RequestError(400, "the 'features' field is required")
        except (TypeError, ValueError):
            raise RequestError(400, "'features' must be a numeric array")

        started = time.perf_counter()
        model_metrics = self.metrics.for_model(name)
        try:
            if features.ndim == 1:
                labels, scores = self.scheduler_for(name).top_k(features, k=top_k)
                labels, scores = labels[None, :], scores[None, :]
                batched = True
            elif features.ndim == 2:
                engine = self.registry.get(name)
                labels, scores = engine.top_k(features, k=top_k)
                batched = False
            else:
                raise RequestError(
                    400, f"'features' must be 1-D or 2-D, got {features.ndim}-D"
                )
        except RequestError:
            model_metrics.record_error()
            raise
        except ValueError as error:
            model_metrics.record_error()
            raise RequestError(400, str(error))
        elapsed = time.perf_counter() - started
        # Scheduler batches already record engine latency; the request-level
        # numbers below include queueing, which is what callers experience.
        if not batched:
            model_metrics.record_request(features.shape[0], elapsed)

        response = {
            "model": name,
            "labels": [int(row[0]) for row in labels],
            "latency_ms": elapsed * 1e3,
        }
        if top_k > 1:
            response["top_k_labels"] = labels.astype(int).tolist()
            response["top_k_scores"] = scores.astype(float).tolist()
        else:
            response["scores"] = [float(row[0]) for row in scores]
        return response

    # ------------------------------------------------------------- schedulers
    def scheduler_for(self, name: str) -> BatchScheduler:
        """The (lazily created) micro-batch scheduler for model *name*."""
        with self._lock:
            scheduler = self._schedulers.get(name)
            if scheduler is None:
                scheduler = BatchScheduler(
                    self.registry.resolver(name),
                    metrics=self.metrics.for_model(name),
                    **self._batch_config,
                )
                self._schedulers[name] = scheduler
            return scheduler

    def close(self) -> None:
        """Stop every scheduler (flushes pending requests)."""
        with self._lock:
            schedulers, self._schedulers = list(self._schedulers.values()), {}
        for scheduler in schedulers:
            scheduler.stop()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`ServeApp` on ``self.server.app``."""

    protocol_version = "HTTP/1.1"
    #: Maximum accepted request body (guards against unbounded reads).
    max_body_bytes = 64 * 1024 * 1024

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------ verbs
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/v1/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/v1/models":
                self._send_json(200, self.app.models())
            elif self.path == "/v1/metrics":
                self._send_json(200, self.app.metrics_snapshot())
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path != "/v1/predict":
                raise RequestError(404, f"no route {self.path!r}")
            payload = self._read_json()
            self._send_json(200, self.app.predict(payload))
        except RequestError as error:
            self._send_json(error.status, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": str(error)})

    # ---------------------------------------------------------------- helpers
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise RequestError(400, "a JSON request body is required")
        if length > self.max_body_bytes:
            raise RequestError(413, "request body too large")
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise RequestError(400, f"invalid JSON body: {error}")

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # The request body may not have been (fully) read on error paths;
            # on a keep-alive connection the leftover bytes would be parsed as
            # the next request line, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)


def create_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 8080, verbose: bool = False
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server bound to ``host:port``.

    Pass ``port=0`` to bind an ephemeral port (``server.server_address[1]``
    reports the one chosen) — the integration tests rely on this.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.app = app  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def run_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 8080, verbose: bool = False
) -> None:  # pragma: no cover - blocking loop, exercised manually / by CLI
    """Run the server until interrupted, then flush schedulers."""
    server = create_server(app, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro.serve listening on http://{bound_host}:{bound_port}")
    for row in app.registry.list_models():
        marker = "*" if row["default"] else " "
        print(f"  {marker} {row['name']} v{row['version']} ({row['strategy']})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()


__all__ = ["ServeApp", "RequestError", "create_server", "run_server"]
