"""Per-tenant admission control and degradation primitives.

A multi-tenant fleet front-ends many models ("tenants") behind one server;
one tenant's burst must not starve the others, and one tenant's broken
cold-load must not consume the request path retrying forever.  This module
holds the three small, independently testable pieces the server composes:

* :class:`TokenBucket` — the classic leaky-bucket rate limiter.  Pure
  arithmetic over an injected monotonic clock, so tests never sleep;
* :class:`TenantQuotas` — per-tenant (keyed by model name) admission: a
  token bucket bounds sustained request rate and a concurrency counter
  bounds in-flight work.  Rejections are *typed* —
  :class:`TenantRateLimitedError` / :class:`TenantQuotaExceededError` each
  carry a ``retry_after`` hint the HTTP layer forwards verbatim, so a
  shed client learns *when* to come back, not just that it was shed;
* :class:`CircuitBreaker` — per-model cold-load degradation: after
  ``threshold`` consecutive failures the breaker opens and callers fail
  fast (503 ``model_unavailable``) instead of queueing behind a load that
  cannot succeed; after ``reset_seconds`` one probe is admitted
  (half-open) and a success re-closes it.

Quota configuration is plain JSON (see :meth:`TenantQuotas.from_file`)::

    {
      "defaults": {"rps": 50, "burst": 100, "max_concurrent": 8},
      "tenants": {
        "premium": {"rps": 500, "burst": 1000, "max_concurrent": 64},
        "batch":   {"rps": 5, "max_concurrent": 2}
      }
    }

Unset fields fall back to the defaults; a ``null`` field disables that
limit for the tenant.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union


class TenantAdmissionError(Exception):
    """Base class for typed tenant-admission rejections.

    ``retry_after`` is the suggested back-off in (fractional) seconds; the
    HTTP layer rounds it up for the ``Retry-After`` header while load
    generators may honour the precise value.
    """

    code = "tenant_rejected"

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class TenantRateLimitedError(TenantAdmissionError):
    """The tenant's token bucket is empty — back off ``retry_after``."""

    code = "tenant_rate_limited"


class TenantQuotaExceededError(TenantAdmissionError):
    """The tenant is at its concurrency quota — finish something first."""

    code = "tenant_quota_exceeded"


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` deep.

    The bucket starts full.  :meth:`try_acquire` never blocks: it returns
    ``None`` on success or the (fractional) seconds until the requested
    tokens will have accrued.  The clock is injectable so tests can drive
    time explicitly.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Optional[float]:
        """Take *tokens* now if available; else return seconds until refill."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current token balance (refreshed to the injected clock)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class _TenantState:
    """Admission state for one tenant: bucket + concurrency + shed counts."""

    __slots__ = (
        "bucket",
        "max_concurrent",
        "in_flight",
        "admitted",
        "rate_limited",
        "quota_exceeded",
    )

    def __init__(self, bucket: Optional[TokenBucket], max_concurrent: Optional[int]):
        self.bucket = bucket
        self.max_concurrent = max_concurrent
        self.in_flight = 0
        self.admitted = 0
        self.rate_limited = 0
        self.quota_exceeded = 0


class TenantLease:
    """One admitted request's hold on its tenant's concurrency quota.

    ``release()`` is idempotent; use as a context manager or call it from a
    ``finally`` so a failing request never leaks its slot.
    """

    __slots__ = ("_quotas", "_tenant", "_released")

    def __init__(self, quotas: "TenantQuotas", tenant: str):
        self._quotas = quotas
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._quotas._release(self._tenant)

    def __enter__(self) -> "TenantLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class TenantQuotas:
    """Per-tenant token-bucket rate limiting plus concurrency quotas.

    Parameters
    ----------
    rps / burst / max_concurrent:
        Fleet-wide defaults applied to every tenant without an override.
        ``rps=None`` disables rate limiting, ``max_concurrent=None``
        disables the concurrency quota; ``burst`` defaults to
        ``max(1, 2 * rps)`` when unset.
    tenants:
        Optional ``{name: {"rps": ..., "burst": ..., "max_concurrent": ...}}``
        overrides; unset fields inherit the defaults, explicit ``None``
        disables that limit for the tenant.
    clock:
        Injectable monotonic clock shared by every bucket.
    """

    def __init__(
        self,
        rps: Optional[float] = None,
        burst: Optional[float] = None,
        max_concurrent: Optional[int] = None,
        tenants: Optional[Dict[str, dict]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rps is not None and rps <= 0:
            raise ValueError(f"rps must be > 0, got {rps}")
        if burst is not None and burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.default_rps = rps
        self.default_burst = burst
        self.default_max_concurrent = max_concurrent
        self._overrides = {
            str(name): dict(policy) for name, policy in (tenants or {}).items()
        }
        self._clock = clock
        self._states: Dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_file(cls, path: Union[str, Path], **kwargs) -> "TenantQuotas":
        """Load a quotas config from a JSON file (schema in module docs).

        Keyword arguments (e.g. ``clock``) are forwarded to the
        constructor; the file's ``defaults`` lose to explicit keyword
        defaults only when the file omits them.
        """
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, dict):
            raise ValueError(f"quotas file {path} must hold a JSON object")
        defaults = raw.get("defaults", {})
        if not isinstance(defaults, dict):
            raise ValueError("'defaults' must be a JSON object")
        tenants = raw.get("tenants", {})
        if not isinstance(tenants, dict):
            raise ValueError("'tenants' must be a JSON object")
        for name, policy in tenants.items():
            if not isinstance(policy, dict):
                raise ValueError(f"tenant {name!r} policy must be a JSON object")
            unknown = set(policy) - {"rps", "burst", "max_concurrent"}
            if unknown:
                raise ValueError(
                    f"tenant {name!r} has unknown quota fields {sorted(unknown)}"
                )
        return cls(
            rps=kwargs.pop("rps", defaults.get("rps")),
            burst=kwargs.pop("burst", defaults.get("burst")),
            max_concurrent=kwargs.pop(
                "max_concurrent", defaults.get("max_concurrent")
            ),
            tenants=tenants,
            **kwargs,
        )

    # -------------------------------------------------------------- admission
    def admit(self, tenant: str) -> TenantLease:
        """Admit one request for *tenant* or raise a typed rejection.

        Checks the concurrency quota first (it is free to release), then
        spends a rate token; on success the returned :class:`TenantLease`
        must be released when the request finishes.
        """
        state = self._state(tenant)
        with self._lock:
            if (
                state.max_concurrent is not None
                and state.in_flight >= state.max_concurrent
            ):
                state.quota_exceeded += 1
                raise TenantQuotaExceededError(
                    f"tenant {tenant!r} is at its concurrency quota "
                    f"({state.max_concurrent} in flight)",
                    retry_after=1.0,
                )
            if state.bucket is not None:
                wait = state.bucket.try_acquire()
                if wait is not None:
                    state.rate_limited += 1
                    raise TenantRateLimitedError(
                        f"tenant {tenant!r} exceeded its rate limit "
                        f"({state.bucket.rate:g} rps, burst "
                        f"{state.bucket.burst:g})",
                        retry_after=max(wait, 1e-3),
                    )
            state.in_flight += 1
            state.admitted += 1
        return TenantLease(self, tenant)

    def _release(self, tenant: str) -> None:
        with self._lock:
            state = self._states.get(tenant)
            if state is not None and state.in_flight > 0:
                state.in_flight -= 1

    # ---------------------------------------------------------------- queries
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready per-tenant admission counters for ``/v1/metrics``."""
        with self._lock:
            tenants = {
                name: {
                    "in_flight": state.in_flight,
                    "admitted": state.admitted,
                    "rate_limited": state.rate_limited,
                    "quota_exceeded": state.quota_exceeded,
                }
                for name, state in sorted(self._states.items())
            }
        return {
            "defaults": {
                "rps": self.default_rps,
                "burst": self.default_burst,
                "max_concurrent": self.default_max_concurrent,
            },
            "tenants": tenants,
        }

    # -------------------------------------------------------------- internals
    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._states.get(tenant)
            if state is None:
                state = self._states[tenant] = self._build_state(tenant)
            return state

    def _build_state(self, tenant: str) -> _TenantState:
        policy = self._overrides.get(tenant, {})
        rps = policy.get("rps", self.default_rps)
        burst = policy.get("burst", self.default_burst)
        max_concurrent = policy.get("max_concurrent", self.default_max_concurrent)
        bucket = None
        if rps is not None:
            if burst is None:
                burst = max(1.0, 2.0 * float(rps))
            bucket = TokenBucket(float(rps), float(burst), clock=self._clock)
        if max_concurrent is not None:
            max_concurrent = int(max_concurrent)
            if max_concurrent < 1:
                raise ValueError(
                    f"tenant {tenant!r}: max_concurrent must be >= 1, "
                    f"got {max_concurrent}"
                )
        return _TenantState(bucket, max_concurrent)


class CircuitBreaker:
    """Per-model consecutive-failure breaker with timed half-open probes.

    Closed (normal) → ``threshold`` consecutive :meth:`record_failure` calls
    open it → :meth:`check` fails fast with ``retry_after`` until
    ``reset_seconds`` have passed → the next check is admitted as the single
    half-open probe → its success re-closes the breaker, its failure
    re-opens it for another ``reset_seconds``.
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_seconds <= 0:
            raise ValueError(f"reset_seconds must be > 0, got {reset_seconds}")
        self.threshold = int(threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half_open"
        if self._clock() - self._opened_at >= self.reset_seconds:
            return "half_open"
        return "open"

    def check(self) -> Optional[float]:
        """Gate one attempt: ``None`` admits it, a float is the fail-fast
        ``retry_after``.  An admitted half-open probe claims exclusivity —
        concurrent callers keep failing fast until it reports back."""
        with self._lock:
            if self._opened_at is None:
                return None
            elapsed = self._clock() - self._opened_at
            if elapsed < self.reset_seconds:
                return max(self.reset_seconds - elapsed, 1e-3)
            if self._probing:
                return self.reset_seconds
            self._probing = True
            return None

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.threshold:
                # A failed half-open probe (or crossing the threshold)
                # restarts the cool-down from now.
                self._opened_at = self._clock()
                self._probing = False

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "reset_seconds": self.reset_seconds,
            }


def retry_after_header(seconds: float) -> int:
    """Round a fractional back-off up to the integral ``Retry-After`` form."""
    return max(1, int(math.ceil(float(seconds))))


__all__ = [
    "CircuitBreaker",
    "TenantAdmissionError",
    "TenantLease",
    "TenantQuotas",
    "TenantRateLimitedError",
    "TenantQuotaExceededError",
    "TokenBucket",
    "retry_after_header",
]
