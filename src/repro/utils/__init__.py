"""Shared utilities: seeded RNG management, argument validation, run logging."""

from repro.utils.rng import RngMixin, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fitted,
    check_labels,
    check_matrix,
    check_positive_int,
    check_probability,
)
from repro.utils.logging import RunLogger

__all__ = [
    "RngMixin",
    "ensure_rng",
    "spawn_rngs",
    "check_fitted",
    "check_labels",
    "check_matrix",
    "check_positive_int",
    "check_probability",
    "RunLogger",
]
