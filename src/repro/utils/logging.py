"""Minimal run logger used by the benchmark harness and examples.

Keeps a structured, in-memory record of key/value events and can render them
as a plain-text report.  The benchmarks use it to emit the same rows the paper
reports (Table 1 rows, Figure series) without pulling in a plotting stack.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO


@dataclass
class LogEvent:
    """A single logged event: a message plus optional structured values."""

    message: str
    values: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)


class RunLogger:
    """Collects events and optionally echoes them to a stream.

    Parameters
    ----------
    name:
        Label included in every echoed line.
    stream:
        Where echoed lines go; ``None`` silences echoing (events are still
        recorded and available through :attr:`events`).
    """

    def __init__(self, name: str = "run", stream: Optional[TextIO] = sys.stdout):
        self.name = name
        self.stream = stream
        self.events: List[LogEvent] = []

    def log(self, message: str, **values: Any) -> LogEvent:
        """Record *message* with structured *values* and echo it."""
        event = LogEvent(message=message, values=dict(values))
        self.events.append(event)
        if self.stream is not None:
            rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in values.items())
            suffix = f" [{rendered}]" if rendered else ""
            print(f"[{self.name}] {message}{suffix}", file=self.stream)
        return event

    def section(self, title: str) -> None:
        """Emit a visual section separator."""
        self.log("=" * 8 + f" {title} " + "=" * 8)

    def to_text(self) -> str:
        """Render all recorded events as a plain-text report."""
        lines = []
        for event in self.events:
            rendered = ", ".join(f"{k}={_fmt(v)}" for k, v in event.values.items())
            suffix = f" [{rendered}]" if rendered else ""
            lines.append(f"{event.message}{suffix}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
