"""Random-number-generator helpers.

Everything in this library that involves randomness (random item memories,
sign tie-breaking, dropout masks, weight initialisation, synthetic datasets)
accepts either an integer seed, an existing :class:`numpy.random.Generator`,
or ``None``.  :func:`ensure_rng` normalises those three cases so that results
are reproducible whenever a seed is given and experiments can share a single
generator when desired.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible generator, or
        an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Create *count* statistically independent generators derived from *seed*.

    Used by the multi-seed experiment runner and the multi-model ensemble so
    that each repetition/model gets its own stream while the whole experiment
    remains reproducible from a single seed.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a lazily constructed ``self.rng`` generator."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The generator backing this object (created on first access)."""
        if self._rng is None:
            self._rng = ensure_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator, e.g. between experiment repetitions."""
        self._seed = seed
        self._rng = ensure_rng(seed)
