"""Argument-validation helpers shared across the library.

These raise early, descriptive errors instead of letting malformed arrays
propagate into opaque NumPy broadcasting failures deep inside training loops.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np


def check_positive_int(value: Any, name: str, minimum: int = 1) -> int:
    """Validate that *value* is an integer >= *minimum* and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value: Any, name: str, inclusive_one: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (or [0, 1) when not inclusive)."""
    if not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    upper_ok = value <= 1.0 if inclusive_one else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if inclusive_one else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_matrix(
    array: Any,
    name: str,
    dtype: Optional[np.dtype] = None,
    n_columns: Optional[int] = None,
) -> np.ndarray:
    """Coerce *array* to a 2-D ndarray (a single row is promoted)."""
    matrix = np.asarray(array, dtype=dtype)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got shape {matrix.shape}")
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {matrix.shape}")
    if n_columns is not None and matrix.shape[1] != n_columns:
        raise ValueError(
            f"{name} must have {n_columns} columns, got {matrix.shape[1]}"
        )
    return matrix


def check_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Raise if *array* contains NaN or infinities; returns it unchanged.

    Serving uses this to turn malformed numeric payloads into clean client
    errors instead of letting NaN flow into the quantiser (where it would
    silently classify garbage) or surface as an opaque internal error.
    """
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values (no NaN/Inf)")
    return array


def check_labels(
    labels: Any, n_samples: int, n_classes: Optional[int] = None
) -> np.ndarray:
    """Validate an integer label vector aligned with *n_samples* rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.shape[0] != n_samples:
        raise ValueError(
            f"labels length {labels.shape[0]} does not match {n_samples} samples"
        )
    if not np.issubdtype(labels.dtype, np.integer):
        if not np.all(labels == labels.astype(np.int64)):
            raise ValueError("labels must be integers")
    labels = labels.astype(np.int64)
    if np.any(labels < 0):
        raise ValueError("labels must be non-negative")
    if n_classes is not None and np.any(labels >= n_classes):
        raise ValueError(f"labels must be < n_classes={n_classes}")
    return labels


def check_fitted(obj: Any, attribute: str) -> None:
    """Raise if *obj* has not been fitted (its *attribute* is still ``None``)."""
    if getattr(obj, attribute, None) is None:
        raise RuntimeError(
            f"{type(obj).__name__} is not fitted yet; call fit() before predict()"
        )


def check_same_shape(a: np.ndarray, b: np.ndarray, names: Tuple[str, str]) -> None:
    """Raise if two arrays differ in shape."""
    if a.shape != b.shape:
        raise ValueError(
            f"{names[0]} shape {a.shape} does not match {names[1]} shape {b.shape}"
        )
