"""Shared fixtures for the test suite.

Everything here is intentionally tiny (small D, few samples) so the whole
suite stays fast; the benchmark harness is where paper-scale settings live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_gaussian_classes
from repro.hdc.encoders import RecordEncoder


@pytest.fixture(scope="session")
def rng():
    """A session-wide reproducible generator for ad-hoc randomness in tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_problem():
    """A small, clearly separable 4-class problem in raw feature space."""
    train_features, train_labels, test_features, test_labels = make_gaussian_classes(
        num_classes=4,
        num_features=24,
        train_size=240,
        test_size=80,
        class_sep=3.0,
        clusters_per_class=1,
        noise_std=0.8,
        seed=7,
    )
    return {
        "train_features": train_features,
        "train_labels": train_labels,
        "test_features": test_features,
        "test_labels": test_labels,
        "num_classes": 4,
    }


@pytest.fixture(scope="session")
def encoded_problem(small_problem):
    """The small problem encoded once with a record encoder (D=1024)."""
    encoder = RecordEncoder(dimension=1024, num_levels=16, seed=11)
    encoder.fit(small_problem["train_features"])
    return {
        "encoder": encoder,
        "train_hypervectors": encoder.encode(small_problem["train_features"]),
        "train_labels": small_problem["train_labels"],
        "test_hypervectors": encoder.encode(small_problem["test_features"]),
        "test_labels": small_problem["test_labels"],
        "num_classes": small_problem["num_classes"],
        "dimension": 1024,
    }


@pytest.fixture(scope="session")
def multimodal_problem():
    """A harder 3-class problem whose classes have two clusters each.

    Centroid training is visibly sub-optimal here, which is what the
    integration tests about strategy ordering rely on.
    """
    train_features, train_labels, test_features, test_labels = make_gaussian_classes(
        num_classes=3,
        num_features=32,
        train_size=360,
        test_size=150,
        class_sep=2.0,
        clusters_per_class=3,
        noise_std=1.0,
        seed=23,
    )
    return {
        "train_features": train_features,
        "train_labels": train_labels,
        "test_features": test_features,
        "test_labels": test_labels,
        "num_classes": 3,
    }
