"""Integration tests of the Fig. 5 ablation mechanics and other design choices.

Fig. 5's full claim (dropout + weight decay give the best *test* accuracy) is
statistical and needs benchmark-scale runs; at test scale we verify the
mechanisms behave as designed: regularisation lowers (or at least does not
raise) the training fit, configurations are plumbed through, and the optional
features (warm start, latent clipping, optimiser choice) all train.
"""

import numpy as np
import pytest

from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier


def fit_and_measure(encoded_problem, config, seed=0):
    model = LeHDCClassifier(config=config, seed=seed)
    model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
    train_accuracy = model.score(
        encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
    )
    test_accuracy = model.score(
        encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
    )
    return model, train_accuracy, test_accuracy


BASE = LeHDCConfig(epochs=20, batch_size=32, learning_rate=0.01, dropout_rate=0.0, weight_decay=0.0)


class TestFig5Mechanics:
    def test_heavy_dropout_reduces_training_fit(self, encoded_problem):
        _, plain_train, _ = fit_and_measure(encoded_problem, BASE, seed=0)
        heavy = BASE.with_overrides(dropout_rate=0.8)
        _, dropout_train, _ = fit_and_measure(encoded_problem, heavy, seed=0)
        assert dropout_train <= plain_train + 0.02

    def test_all_regularised_variants_stay_above_chance(self, encoded_problem):
        variants = {
            "with_both": BASE.with_overrides(dropout_rate=0.5, weight_decay=0.05),
            "without_dropout": BASE.with_overrides(dropout_rate=0.0, weight_decay=0.05),
            "without_weight_decay": BASE.with_overrides(dropout_rate=0.5, weight_decay=0.0),
        }
        for config in variants.values():
            _, _, test_accuracy = fit_and_measure(encoded_problem, config, seed=1)
            assert test_accuracy > 0.5


class TestDesignChoiceAblations:
    def test_latent_clip_on_and_off_both_train(self, encoded_problem):
        for clip in (1.0, None):
            config = BASE.with_overrides(latent_clip=clip, epochs=10)
            model, train_accuracy, _ = fit_and_measure(encoded_problem, config, seed=2)
            assert train_accuracy > 0.5
            if clip is not None:
                assert np.all(np.abs(model.latent_class_hypervectors_) <= clip + 1e-9)

    def test_coupled_and_decoupled_weight_decay_both_train(self, encoded_problem):
        for decoupled in (True, False):
            config = BASE.with_overrides(
                weight_decay=0.05, decoupled_weight_decay=decoupled, epochs=10
            )
            _, train_accuracy, _ = fit_and_measure(encoded_problem, config, seed=3)
            assert train_accuracy > 0.5

    def test_warm_start_converges_at_least_as_fast_initially(self, encoded_problem):
        cold = BASE.with_overrides(epochs=2)
        warm = BASE.with_overrides(epochs=2, warm_start_from_centroids=True)
        _, _, cold_test = fit_and_measure(encoded_problem, cold, seed=4)
        _, _, warm_test = fit_and_measure(encoded_problem, warm, seed=4)
        # After only two epochs the centroid-initialised model should already
        # be competitive (it starts from the baseline HDC solution).
        assert warm_test >= cold_test - 0.1

    @pytest.mark.parametrize(
        "optimizer,learning_rate", [("adam", 0.01), ("momentum", 0.005), ("sgd", 0.05)]
    )
    def test_all_optimizers_supported(self, encoded_problem, optimizer, learning_rate):
        config = BASE.with_overrides(
            optimizer=optimizer, epochs=8, learning_rate=learning_rate
        )
        _, train_accuracy, _ = fit_and_measure(encoded_problem, config, seed=5)
        # All optimisers must train the BNN to well above chance (0.25);
        # Adam is expected to be the strongest, matching the paper's choice.
        assert train_accuracy > 0.35
