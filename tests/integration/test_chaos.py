"""Integration chaos soak: fault-injected serving degrades gracefully.

The acceptance criterion for the robustness tier: with a seeded plan
injecting hangs, crashes, and torn/dropped frames, every failure the client
sees is a typed 429/503/504, availability stays at or above 95%, nothing
leaks a shared-memory segment, and the fault-free path stays bit-identical
to single-process scoring.  One short soak per transport keeps the suite
honest without turning CI into a stress test.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.faults import PRESETS, FaultPlan, FaultRule
from repro.hdc.encoders import RecordEncoder
from repro.loadgen import (
    ClosedLoop,
    InProcessTarget,
    RequestSampler,
    run_load_test,
    validate_resilience_report,
)
from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp


def _shm_names() -> set:
    root = Path("/dev/shm")
    return {entry.name for entry in root.iterdir()} if root.is_dir() else set()


@pytest.fixture(scope="module")
def trained():
    sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=0)
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(sampler.train_features, sampler.train_labels)
    return sampler, PackedInferenceEngine(pipeline, name="ucihar")


@pytest.mark.parametrize("transport", ["pipe", "shm", "tcp"])
def test_chaos_soak_degrades_gracefully(trained, transport):
    sampler, engine = trained
    before = _shm_names()
    registry = ModelRegistry()
    registry.register("ucihar", engine)
    app = ServeApp(
        registry,
        num_processes=3,
        transport=transport,
        cache_size=0,
        max_wait_ms=0.5,
        request_timeout=0.75,
        fault_plan=PRESETS["quick"],
    )
    try:
        report = run_load_test(
            InProcessTarget(app, deadline_ms=2000.0),
            sampler,
            ClosedLoop(concurrency=4),
            num_requests=100,
            warmup_requests=12,
            fault_plan=PRESETS["quick"],
        )
    finally:
        app.close()

    # No leaked segments once the app is closed — even after crashes.
    assert _shm_names() - before == set()

    # Graceful degradation: availability floor, no untyped failures, no
    # successful response outliving its deadline.
    validate_resilience_report(report, min_availability=0.95)

    # The soak must actually have injected and survived faults — a zero
    # fault count would make the assertions above vacuous.
    delta = report["server_metrics_delta"]
    survived = (
        delta.get("respawns", 0)
        + delta.get("hangs", 0)
        + delta.get("shard_retries", 0)
        + delta.get("transport_errors", 0)
        + delta.get("worker_faults", 0)
    )
    assert survived > 0, delta


def test_fault_free_path_is_bit_identical_to_single_process(trained):
    sampler, engine = trained
    # A plan whose rules can never fire (worker index out of range): the
    # chaos machinery is armed but idle, and the cluster answer must stay
    # bit-identical to the single-process engine.
    inert = FaultPlan(
        rules=(FaultRule(kind="crash", at=1, workers=(9,)),), seed=0
    )
    queries = np.asarray(sampler.features[:32], dtype=np.float64)
    registry = ModelRegistry()
    registry.register("ucihar", engine)
    app = ServeApp(
        registry,
        num_processes=2,
        cache_size=0,
        max_wait_ms=0.5,
        fault_plan=inert,
    )
    try:
        response = app.predict({"features": queries.tolist()})
    finally:
        app.close()
    np.testing.assert_array_equal(response["labels"], engine.predict(queries))


@pytest.mark.parametrize("transport", ["pipe", "shm", "tcp"])
def test_eviction_churn_is_bit_identical(trained, transport):
    """Evict-during-dispatch and unlink-vs-attach races change nothing.

    A plan that pages the bank out on a cadence (``evict``), force-unlinks
    it under the live lease (``unlink``), and slows a cold restore
    (``slow_load``) exercises the lease/generation protocol mid-stream; the
    answers must stay bit-identical to single-process scoring on every
    transport, and the restores must actually have happened.
    """
    sampler, engine = trained
    queries = sampler.features[:48]
    expected = engine.predict(queries)
    before = _shm_names()
    registry = ModelRegistry()
    registry.register("ucihar", engine)
    plan = FaultPlan(
        rules=(
            FaultRule(kind="evict", every=3),
            FaultRule(kind="unlink", every=7, after=4),
            FaultRule(kind="slow_load", every=11, after=6),
        ),
        seed=1,
        slow_seconds=0.01,
    )
    app = ServeApp(
        registry,
        num_processes=2,
        transport=transport,
        cache_size=0,
        max_wait_ms=0.5,
        fault_plan=plan,
    )
    try:
        for start in range(0, len(queries), 4):
            chunk = queries[start : start + 4]
            answer = app.predict({"features": chunk.tolist()})
            assert answer["labels"] == expected[start : start + 4].tolist()
        fleet = app.metrics_snapshot()["fleet"]
        assert fleet["evictions"] > 0
        assert fleet["restores"] + fleet["bank_restores"] > 0
    finally:
        app.begin_drain()
        app.drain(grace_seconds=10.0)
    assert _shm_names() - before == set()
