"""Integration: cluster-served predictions are bit-identical to one process.

The acceptance criterion for the multiprocess tier: for both a shared-rule
classifier and a ``MultiModelHDC`` ensemble bank — each round-tripped through
``repro.io`` the way ``repro serve`` loads models — predictions produced by
``ServeApp(num_processes=N)`` (shared-memory bank, sharded batches, merged
scores) equal the single-process ``PackedInferenceEngine`` output exactly.
Also covers the end-to-end soak wiring: ``repro.loadgen`` driving the
cluster-backed app over HTTP.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster import ClusterDispatcher
from repro.hdc.encoders import RecordEncoder
from repro.io import load_model, save_model
from repro.loadgen import ClosedLoop, HTTPTarget, RequestSampler, run_load_test, validate_report
from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp, create_server


@pytest.fixture(scope="module")
def saved_models(small_problem, tmp_path_factory):
    """A shared-rule model and an ensemble bank, saved + reloaded via io."""
    directory = tmp_path_factory.mktemp("cluster-parity")
    paths = {}
    for name, classifier in (
        ("baseline", BaselineHDC(seed=0)),
        ("ensemble", MultiModelHDC(models_per_class=4, iterations=1, seed=0)),
    ):
        encoder = RecordEncoder(
            dimension=512, num_levels=8, tie_break="positive", seed=0
        )
        pipeline = HDCPipeline(encoder, classifier)
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        paths[name] = save_model(directory / f"{name}.npz", pipeline, strategy_name=name)
    return paths


@pytest.mark.parametrize("name", ["baseline", "ensemble"])
def test_dispatcher_parity_for_saved_models(saved_models, small_problem, name):
    queries = small_problem["test_features"]
    engine = PackedInferenceEngine(load_model(saved_models[name]), name=name)
    reference_labels, reference_scores = engine.top_k(queries, k=3)
    with ClusterDispatcher(engine, num_workers=3) as dispatcher:
        labels, scores = dispatcher.top_k(queries, k=3)
        assert np.array_equal(labels, reference_labels)
        assert np.array_equal(scores, reference_scores)
        assert np.array_equal(
            dispatcher.decision_scores(queries), engine.decision_scores(queries)
        )


def test_serveapp_cluster_parity_and_crash_masking(saved_models, small_problem):
    queries = small_problem["test_features"][:24]
    registry = ModelRegistry()
    registry.register("ens", saved_models["ensemble"])
    app = ServeApp(registry, num_processes=2, max_wait_ms=0.5, cache_size=0)
    try:
        engine = registry.get("ens")
        response = app.predict({"features": queries.tolist(), "top_k": 2})
        expected_labels, expected_scores = engine.top_k(queries, k=2)
        assert response["top_k_labels"] == expected_labels.astype(int).tolist()
        assert response["top_k_scores"] == expected_scores.astype(float).tolist()

        # Worker crash mid-batch: the dead worker is respawned and the lost
        # shard retried once on the healthy pool, so a single crash is
        # masked entirely — the request still answers correctly.
        dispatcher = app._dispatchers["ens"][1]
        assert dispatcher is not None
        dispatcher.poison_worker(0)
        masked = app.predict({"features": queries.tolist()})
        assert masked["labels"] == expected_labels[:, 0].astype(int).tolist()
        info = dispatcher.info()
        assert info["respawns"] >= 1
        assert info["failures"]["shard_retries"] >= 1
    finally:
        app.close()


def test_loadgen_soaks_cluster_backed_http_endpoint(saved_models):
    registry = ModelRegistry()
    registry.register("baseline", saved_models["baseline"])
    app = ServeApp(registry, num_processes=2, max_wait_ms=0.5)
    server = create_server(app, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        sampler = RequestSampler.from_arrays(
            np.random.default_rng(0).random((40, 24)), seed=0
        )
        report = run_load_test(
            HTTPTarget(f"http://127.0.0.1:{port}"),
            sampler,
            ClosedLoop(concurrency=4),
            num_requests=40,
            warmup_requests=8,
        )
        validate_report(report)
        assert report["config"]["target"]["kind"] == "http"

        # The worker pool is visible through the public metrics route.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/metrics", timeout=10
        ) as response:
            metrics = json.loads(response.read())
        assert "baseline@v1" in metrics["cluster"]
        assert len(metrics["cluster"]["baseline@v1"]["worker_pids"]) == 2
    finally:
        server.shutdown()
        server.server_close()
        app.close()
