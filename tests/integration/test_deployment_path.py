"""Integration test of the full deployment path: train -> save -> load -> packed inference.

This mirrors the edge-deployment example: a LeHDC-trained pipeline is
serialised, reloaded, and its class hypervectors are run through the
bit-packed XOR+popcount backend.  Every stage must agree with the dense
reference implementation, because the paper's zero-overhead claim rests on the
trained model being a drop-in replacement for the baseline's inference state.
"""

import numpy as np
import pytest

from repro.classifiers.pipeline import HDCPipeline
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import RecordEncoder
from repro.kernels import pack_bipolar
from repro.io import load_model, save_model


@pytest.fixture(scope="module")
def deployed_model(small_problem, tmp_path_factory):
    encoder = RecordEncoder(dimension=1024, num_levels=16, tie_break="positive", seed=13)
    classifier = LeHDCClassifier(
        config=LeHDCConfig(epochs=10, batch_size=32, dropout_rate=0.2, weight_decay=0.02),
        seed=13,
    )
    pipeline = HDCPipeline(encoder, classifier)
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    path = save_model(
        tmp_path_factory.mktemp("models") / "deployed.npz", pipeline, strategy_name="lehdc"
    )
    return {"pipeline": pipeline, "path": path}


class TestDeploymentPath:
    def test_reloaded_model_matches_original(self, deployed_model, small_problem):
        reloaded = load_model(deployed_model["path"])
        original = deployed_model["pipeline"].predict(small_problem["test_features"])
        restored = reloaded.predict(small_problem["test_features"])
        np.testing.assert_array_equal(original, restored)

    def test_packed_inference_matches_dense(self, deployed_model, small_problem):
        pipeline = deployed_model["pipeline"]
        queries = pipeline.encoder.encode(small_problem["test_features"])
        packed_classes = pack_bipolar(pipeline.class_hypervectors_)
        packed_queries = pack_bipolar(queries)
        packed_predictions = np.argmin(
            packed_queries.hamming_distance(packed_classes), axis=1
        )
        np.testing.assert_array_equal(
            packed_predictions, pipeline.classifier.predict(queries)
        )

    def test_reloaded_accuracy_preserved(self, deployed_model, small_problem):
        reloaded = load_model(deployed_model["path"])
        original_accuracy = deployed_model["pipeline"].score(
            small_problem["test_features"], small_problem["test_labels"]
        )
        reloaded_accuracy = reloaded.score(
            small_problem["test_features"], small_problem["test_labels"]
        )
        assert reloaded_accuracy == pytest.approx(original_accuracy)

    def test_saved_file_is_compact(self, deployed_model):
        # 4 classes x 1024 bits plus item memories; the compressed archive
        # should stay well under a megabyte — sanity check on the format.
        assert deployed_model["path"].stat().st_size < 1_000_000
