"""End-to-end integration tests: raw features -> encoder -> classifiers -> accuracy."""

import numpy as np
import pytest

from repro import (
    BaselineHDC,
    HDCPipeline,
    LeHDCClassifier,
    LeHDCConfig,
    NGramEncoder,
    RecordEncoder,
    RetrainingHDC,
    get_dataset,
)


class TestPipelineOnRegistryDatasets:
    @pytest.mark.parametrize("name", ["pamap", "ucihar"])
    def test_baseline_pipeline_learns_registry_dataset(self, name):
        data = get_dataset(name, profile="tiny", seed=0, prefer_real=False)
        pipeline = HDCPipeline(
            RecordEncoder(dimension=1024, num_levels=16, seed=0), BaselineHDC(seed=0)
        )
        pipeline.fit(data.train_features, data.train_labels)
        accuracy = pipeline.score(data.test_features, data.test_labels)
        assert accuracy > 2.0 / data.num_classes  # comfortably above chance

    def test_lehdc_pipeline_on_registry_dataset(self):
        data = get_dataset("pamap", profile="tiny", seed=1, prefer_real=False)
        config = LeHDCConfig(epochs=15, batch_size=32, dropout_rate=0.3, weight_decay=0.03)
        pipeline = HDCPipeline(
            RecordEncoder(dimension=1024, num_levels=16, seed=1),
            LeHDCClassifier(config=config, seed=1),
        )
        pipeline.fit(data.train_features, data.train_labels)
        accuracy = pipeline.score(data.test_features, data.test_labels)
        # The tiny profile has very few samples per class (12 classes, 6
        # clusters each), so require a clear margin over chance rather than
        # the benchmark-scale accuracy.
        assert accuracy > 0.5

    def test_ngram_encoder_end_to_end(self, small_problem):
        pipeline = HDCPipeline(
            NGramEncoder(dimension=2048, num_levels=16, ngram=3, seed=2),
            BaselineHDC(seed=2),
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        accuracy = pipeline.score(
            small_problem["test_features"], small_problem["test_labels"]
        )
        assert accuracy > 0.6


class TestEncodingSharedAcrossStrategies:
    def test_all_strategies_consume_the_same_encoding(self, multimodal_problem):
        encoder = RecordEncoder(dimension=2048, num_levels=16, seed=3)
        encoder.fit(multimodal_problem["train_features"])
        train_encoded = encoder.encode(multimodal_problem["train_features"])
        test_encoded = encoder.encode(multimodal_problem["test_features"])
        labels = multimodal_problem["train_labels"]

        strategies = {
            "baseline": BaselineHDC(seed=4),
            "retraining": RetrainingHDC(iterations=10, seed=4),
            "lehdc": LeHDCClassifier(
                config=LeHDCConfig(epochs=20, batch_size=32, dropout_rate=0.2, weight_decay=0.02),
                seed=4,
            ),
        }
        accuracies = {}
        for name, model in strategies.items():
            model.fit(train_encoded, labels)
            accuracies[name] = model.score(
                test_encoded, multimodal_problem["test_labels"]
            )
            # Every strategy must produce binary class hypervectors of the
            # same shape: the inference datapath is interchangeable.
            assert model.class_hypervectors_.shape == (3, 2048)
            assert set(np.unique(model.class_hypervectors_)) <= {-1, 1}
        assert all(accuracy > 0.4 for accuracy in accuracies.values())


class TestModelReuse:
    def test_class_hypervectors_transplant_between_models(self, multimodal_problem):
        # Because inference is identical, class hypervectors trained by LeHDC
        # can be dropped into a BaselineHDC container and give identical
        # predictions — this is how a deployed HDC accelerator would consume
        # LeHDC's output (the paper's zero-overhead claim).
        encoder = RecordEncoder(dimension=1024, num_levels=16, seed=5)
        encoder.fit(multimodal_problem["train_features"])
        train_encoded = encoder.encode(multimodal_problem["train_features"])
        test_encoded = encoder.encode(multimodal_problem["test_features"])

        lehdc = LeHDCClassifier(
            config=LeHDCConfig(epochs=10, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
            seed=5,
        )
        lehdc.fit(train_encoded, multimodal_problem["train_labels"])

        carrier = BaselineHDC(seed=5)
        carrier.fit(train_encoded, multimodal_problem["train_labels"])
        carrier.class_hypervectors_ = lehdc.class_hypervectors_.copy()

        np.testing.assert_array_equal(
            carrier.predict(test_encoded), lehdc.predict(test_encoded)
        )
