"""Integration tests of the paper's central equivalence (Sec. 3.1).

A binary HDC classifier and a single-layer BNN with the class hypervectors as
weights make *identical* predictions: argmin Hamming == argmax dot product ==
argmax of the BNN forward pass.  These tests exercise that equivalence on real
encoded data and for every training strategy.
"""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.bnn_model import SingleLayerBNN
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.hypervector import hamming_distance


def bnn_predictions_from_class_hypervectors(class_hypervectors, queries):
    """Build a BNN whose weights are the given class hypervectors and run it."""
    num_classes, dimension = class_hypervectors.shape
    model = SingleLayerBNN(dimension, num_classes, dropout_rate=0.0, seed=0)
    model.linear.set_latent_from_bipolar(
        class_hypervectors.T.astype(np.float64), magnitude=1.0
    )
    model.eval()
    logits = model.forward(queries.astype(np.float64))
    return np.argmax(logits, axis=1)


@pytest.mark.parametrize(
    "strategy_factory",
    [
        lambda: BaselineHDC(seed=0),
        lambda: RetrainingHDC(iterations=5, seed=0),
        lambda: LeHDCClassifier(
            config=LeHDCConfig(epochs=8, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
            seed=0,
        ),
    ],
    ids=["baseline", "retraining", "lehdc"],
)
def test_hdc_inference_equals_bnn_forward(encoded_problem, strategy_factory):
    model = strategy_factory()
    model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
    queries = encoded_problem["test_hypervectors"]

    hdc_predictions = model.predict(queries)
    bnn_predictions = bnn_predictions_from_class_hypervectors(
        model.class_hypervectors_, queries
    )
    np.testing.assert_array_equal(hdc_predictions, bnn_predictions)


def test_hamming_argmin_equals_dot_argmax_on_trained_model(encoded_problem):
    model = BaselineHDC(seed=1)
    model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
    queries = encoded_problem["test_hypervectors"]
    distances = hamming_distance(queries, model.class_hypervectors_)
    scores = model.decision_scores(queries)
    np.testing.assert_array_equal(np.argmin(distances, axis=1), np.argmax(scores, axis=1))


def test_cosine_relation_holds_on_trained_class_hypervectors(encoded_problem):
    model = BaselineHDC(seed=2)
    model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
    queries = encoded_problem["test_hypervectors"][:20]
    distances = hamming_distance(queries, model.class_hypervectors_)
    dots = model.decision_scores(queries)
    dimension = encoded_problem["dimension"]
    np.testing.assert_allclose(dots / dimension, 1.0 - 2.0 * distances, atol=1e-9)
