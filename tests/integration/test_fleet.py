"""Multi-tenant fleet integration: bank paging, admission, degradation.

These tests drive :class:`ServeApp` in-process the way the HTTP layer
would, with many model names ("tenants") sharing one worker-pool budget, and
assert the three fleet behaviours end to end: the residency cap pages banks
in and out without changing answers, per-tenant admission sheds with typed
429s, and a broken cold-load trips the circuit breaker into fast 503s.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp
from repro.serve.server import RequestError
from repro.serve.tenancy import TenantQuotas


@pytest.fixture(scope="module")
def fleet_engine(small_problem):
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=5)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=5))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return PackedInferenceEngine(pipeline, name="fleet")


def _registry(engine, tenants):
    registry = ModelRegistry(max_resident=max(4, len(tenants)))
    for name in tenants:
        registry.register(name, engine)
    return registry


class TestFleetPaging:
    def test_paging_across_tenants_matches_single_process(
        self, fleet_engine, small_problem
    ):
        tenants = [f"t{i}" for i in range(5)]
        queries = small_problem["test_features"][:6]
        expected = fleet_engine.predict(queries)
        app = ServeApp(
            _registry(fleet_engine, tenants),
            num_processes=2,
            max_resident_banks=2,
            cache_size=0,
            max_wait_ms=0.5,
        )
        try:
            for round_robin in range(2):
                for name in tenants:
                    answer = app.predict(
                        {"features": queries.tolist(), "model": name}
                    )
                    assert answer["labels"] == expected.tolist()
            fleet = app.metrics_snapshot()["fleet"]
            assert fleet["cold_loads"] >= 5
            assert fleet["evictions"] >= 3  # cap 2 forced paging
            assert fleet["resident_banks"] <= 2
            assert fleet["dispatchers"] <= 2
            assert fleet["max_resident_banks"] == 2
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)

    def test_concurrent_tenants_all_answer_correctly(
        self, fleet_engine, small_problem
    ):
        tenants = [f"t{i}" for i in range(4)]
        queries = small_problem["test_features"][:4]
        expected = fleet_engine.predict(queries).tolist()
        app = ServeApp(
            _registry(fleet_engine, tenants),
            num_processes=2,
            max_resident_banks=2,
            cache_size=0,
            max_wait_ms=0.5,
        )
        failures = []

        def hammer(name):
            try:
                for _ in range(6):
                    answer = app.predict(
                        {"features": queries.tolist(), "model": name}
                    )
                    if answer["labels"] != expected:
                        failures.append((name, "wrong answer"))
            except Exception as error:  # pragma: no cover - failure path
                failures.append((name, repr(error)))

        try:
            threads = [
                threading.Thread(target=hammer, args=(name,)) for name in tenants
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert failures == []
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)


class TestTenantAdmission:
    def test_rate_limited_tenant_sheds_typed_429(self, fleet_engine, small_problem):
        queries = small_problem["test_features"][:1]
        quotas = TenantQuotas(rps=1.0, burst=1.0)
        app = ServeApp(
            _registry(fleet_engine, ["a", "b"]),
            tenant_quotas=quotas,
            cache_size=0,
            max_wait_ms=0.5,
        )
        try:
            app.predict({"features": queries.tolist(), "model": "a"})
            with pytest.raises(RequestError) as info:
                app.predict({"features": queries.tolist(), "model": "a"})
            assert info.value.status == 429
            assert info.value.code == "tenant_rate_limited"
            assert info.value.retry_after >= 1
            # Tenant "b" has an independent bucket and still answers.
            app.predict({"features": queries.tolist(), "model": "b"})
            tenancy = app.metrics_snapshot()["tenancy"]
            assert tenancy["tenants"]["a"]["rate_limited"] == 1
            assert tenancy["tenants"]["b"]["rate_limited"] == 0
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)

    def test_quota_lease_is_released_after_each_request(
        self, fleet_engine, small_problem
    ):
        queries = small_problem["test_features"][:1]
        quotas = TenantQuotas(max_concurrent=1)
        app = ServeApp(
            _registry(fleet_engine, ["a"]),
            tenant_quotas=quotas,
            cache_size=0,
            max_wait_ms=0.5,
        )
        try:
            for _ in range(5):  # a leaked lease would 429 on the second call
                app.predict({"features": queries.tolist(), "model": "a"})
            assert quotas.snapshot()["tenants"]["a"]["in_flight"] == 0
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)


class TestCircuitBreaker:
    def test_broken_cold_load_opens_breaker_and_fails_fast(
        self, fleet_engine, small_problem, monkeypatch
    ):
        import repro.serve.server as server_mod

        def exploding_dispatcher(*args, **kwargs):
            raise RuntimeError("injected cold-load failure")

        monkeypatch.setattr(server_mod, "ClusterDispatcher", exploding_dispatcher)
        queries = small_problem["test_features"][:1]
        app = ServeApp(
            _registry(fleet_engine, ["a"]),
            num_processes=2,
            cache_size=0,
            max_wait_ms=0.5,
            cold_load_retries=0,
            breaker_threshold=2,
            breaker_reset_seconds=60.0,
        )
        try:
            for _ in range(2):
                with pytest.raises(RequestError) as info:
                    app.predict({"features": queries.tolist(), "model": "a"})
                assert info.value.status == 503
                assert info.value.code == "model_unavailable"
            # The breaker is open now: the next request fails fast with a
            # Retry-After hint instead of re-attempting the broken load.
            with pytest.raises(RequestError) as info:
                app.predict({"features": queries.tolist(), "model": "a"})
            assert info.value.status == 503
            assert info.value.code == "model_unavailable"
            assert "breaker" in str(info.value)
            assert info.value.retry_after >= 1
            fleet = app.metrics_snapshot()["fleet"]
            assert fleet["breakers"]["a"]["state"] == "open"
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)

    def test_breaker_closes_after_successful_probe(
        self, fleet_engine, small_problem, monkeypatch
    ):
        import repro.serve.server as server_mod

        real_dispatcher = server_mod.ClusterDispatcher
        fail = {"on": True}

        def flaky_dispatcher(*args, **kwargs):
            if fail["on"]:
                raise RuntimeError("injected cold-load failure")
            return real_dispatcher(*args, **kwargs)

        monkeypatch.setattr(server_mod, "ClusterDispatcher", flaky_dispatcher)
        queries = small_problem["test_features"][:2]
        expected = fleet_engine.predict(queries).tolist()
        app = ServeApp(
            _registry(fleet_engine, ["a"]),
            num_processes=2,
            cache_size=0,
            max_wait_ms=0.5,
            cold_load_retries=0,
            breaker_threshold=1,
            breaker_reset_seconds=0.05,
        )
        try:
            with pytest.raises(RequestError):
                app.predict({"features": queries.tolist(), "model": "a"})
            assert app.metrics_snapshot()["fleet"]["breakers"]["a"]["state"] in (
                "open",
                "half_open",
            )
            fail["on"] = False
            deadline = time.monotonic() + 5.0
            while True:  # wait out reset_seconds, then the probe succeeds
                try:
                    answer = app.predict(
                        {"features": queries.tolist(), "model": "a"}
                    )
                    break
                except RequestError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.02)
            assert answer["labels"] == expected
            assert app.metrics_snapshot()["fleet"]["breakers"]["a"]["state"] == (
                "closed"
            )
        finally:
            app.begin_drain()
            app.drain(grace_seconds=10.0)
