"""Integration test of the paper's headline claim at test scale.

The abstract claims LeHDC improves inference accuracy by over 15% on average
against the baseline binary HDC.  At test scale (tiny datasets, small D, few
epochs) we do not require the full 15-point margin, but LeHDC must show a
clear positive average increment over the baseline across several registry
datasets, and the experiment harness must report it the way Table 1 does.
"""

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.eval.experiment import run_strategy_comparison
from repro.eval.metrics import average_increment

FAST_LEHDC = LeHDCConfig(
    epochs=20, batch_size=32, dropout_rate=0.3, weight_decay=0.03, learning_rate=0.01
)

STRATEGIES = {
    "baseline": lambda rng: BaselineHDC(seed=rng),
    "lehdc": lambda rng: LeHDCClassifier(config=FAST_LEHDC, seed=rng),
}


@pytest.mark.slow
def test_average_increment_is_positive_across_datasets():
    datasets = ["pamap", "ucihar", "isolet"]
    baseline_means = []
    lehdc_means = []
    for name in datasets:
        result = run_strategy_comparison(
            dataset_name=name,
            strategies=STRATEGIES,
            dimension=2000,
            num_levels=16,
            repetitions=1,
            profile="tiny",
            seed=0,
        )
        summary = result.summary_percent()
        baseline_means.append(summary["baseline"].mean)
        lehdc_means.append(summary["lehdc"].mean)

    increment = average_increment(lehdc_means, baseline_means)
    assert increment > 2.0  # clear positive margin even at tiny scale


@pytest.mark.slow
def test_experiment_result_reports_table1_style_rows():
    result = run_strategy_comparison(
        dataset_name="pamap",
        strategies=STRATEGIES,
        dimension=2000,
        num_levels=16,
        repetitions=2,
        profile="tiny",
        seed=1,
    )
    summary = result.summary_percent()
    for name in ("baseline", "lehdc"):
        assert summary[name].count == 2
        assert 0.0 <= summary[name].mean <= 100.0
        assert "±" in str(summary[name])
    assert result.increment_over("baseline", "lehdc") == pytest.approx(
        summary["lehdc"].mean - summary["baseline"].mean
    )
