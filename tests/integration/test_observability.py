"""Integration: tracing, Prometheus exposition, and the access log end to end.

The tentpole acceptance check lives here: one request into a two-worker
``ServeApp`` must produce a *single* stitched trace — queue wait, per-worker
scoring spans from the worker processes, and the merge — all sharing the
root's trace id, with every parent pointer resolving inside the file.
"""

from __future__ import annotations

import logging
import threading
import urllib.request

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.io import save_model
from repro.obs import (
    CONTENT_TYPE,
    MemorySink,
    Tracer,
    render_prometheus,
    validate_exposition,
)
from repro.serve import ModelRegistry, ServeApp, create_server


@pytest.fixture(scope="module")
def saved_model(small_problem, tmp_path_factory):
    encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return save_model(
        tmp_path_factory.mktemp("obs") / "baseline.npz",
        pipeline,
        strategy_name="baseline",
    )


def _traced_app(saved_model, **kwargs):
    sink = MemorySink()
    registry = ModelRegistry()
    registry.register("baseline", saved_model)
    app = ServeApp(registry, tracer=Tracer(sink), max_wait_ms=0.5, **kwargs)
    return app, sink


class TestClusterTracePropagation:
    def test_two_worker_request_yields_one_stitched_trace(
        self, saved_model, small_problem
    ):
        import os

        app, sink = _traced_app(saved_model, num_processes=2, cache_size=0)
        try:
            # A single-sample request rides the micro-batch scheduler (the
            # production hot path: queue wait, coalesced batch, dispatch).
            row = small_problem["test_features"][0]
            single = app.predict({"features": row.tolist()})
            # A client batch takes the direct path and shards across both
            # workers, so its trace carries two worker-side scoring spans.
            queries = small_problem["test_features"][:8]
            batched = app.predict({"features": queries.tolist()})
            assert "trace_id" in single and "trace_id" in batched
        finally:
            app.close()

        spans = sink.records
        span_ids = {span["span"] for span in spans}
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span["trace"], []).append(span)
            # Every parent pointer in the file resolves: nothing dangles.
            if span["parent"] is not None:
                assert span["parent"] in span_ids
        assert set(by_trace) == {single["trace_id"], batched["trace_id"]}

        # The scheduler-path trace shows the full pipeline in one tree.
        names = {span["name"] for span in by_trace[single["trace_id"]]}
        for expected in (
            "request",
            "validate",
            "queue_wait",
            "batch_execute",
            "dispatch",
            "worker:score",
            "merge",
            "respond",
        ):
            assert expected in names, f"missing {expected!r} in {sorted(names)}"
        roots = [s for s in by_trace[single["trace_id"]] if s["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "request"

        # The batched trace's scoring spans really came from the two worker
        # processes: one per shard, each from a pid that is not ours.
        worker_spans = [
            span
            for span in by_trace[batched["trace_id"]]
            if span["name"] == "worker:score"
        ]
        assert len(worker_spans) == 2
        assert all(span["pid"] != os.getpid() for span in worker_spans)
        assert {span["attrs"]["worker"] for span in worker_spans} == {0, 1}

    def test_worker_crash_keeps_the_trace_well_formed(
        self, saved_model, small_problem
    ):
        app, sink = _traced_app(saved_model, num_processes=2, cache_size=0)
        try:
            queries = small_problem["test_features"][:8]
            # Dispatchers are created lazily on first use.
            app.predict({"features": queries.tolist()})
            dispatcher = next(
                d for _, d in app._dispatchers.values() if d is not None
            )
            dispatcher.poison_worker(0)
            # The crash is masked by the retry-once path, but the trace must
            # still be a tree — and the dispatch span must carry the
            # evidence that a shard was retried.
            masked = app.predict({"features": queries.tolist()})
            assert "trace_id" in masked
            spans = list(sink.records)
            span_ids = {span["span"] for span in spans}
            for span in spans:
                if span["parent"] is not None:
                    assert span["parent"] in span_ids
            retried = [
                span
                for span in spans
                if span["attrs"].get("retried_shards") is not None
            ]
            assert retried, "no span recorded the shard retry"

            # Recovery: the respawned pool produces a complete trace again.
            recovered = app.predict({"features": queries.tolist()})
            assert "trace_id" in recovered
            recovery = [
                span for span in sink.records
                if span["trace"] == recovered["trace_id"]
            ]
            assert {"worker:score", "merge"} <= {s["name"] for s in recovery}
        finally:
            app.close()

    def test_unsampled_requests_record_nothing(self, saved_model, small_problem):
        sink = MemorySink()
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(
            registry,
            tracer=Tracer(sink, sample_rate=0.0),
            num_processes=2,
            max_wait_ms=0.5,
            cache_size=0,
        )
        try:
            queries = small_problem["test_features"][:4]
            response = app.predict({"features": queries.tolist()})
            assert "trace_id" not in response
            assert sink.records == []
        finally:
            app.close()


class TestPrometheusEndpoint:
    def test_cluster_snapshot_renders_valid_exposition(
        self, saved_model, small_problem
    ):
        app, _ = _traced_app(saved_model, num_processes=2, cache_size=0)
        try:
            queries = small_problem["test_features"][:8]
            app.predict({"features": queries.tolist()})
            text = render_prometheus(app.metrics_snapshot())
        finally:
            app.close()
        validate_exposition(text)
        assert "repro_requests_total" in text
        assert 'repro_worker_requests_total{dispatcher="baseline@v1",worker="0"}' in text
        assert "repro_worker_utilization" in text
        assert "repro_stage_latency_seconds_bucket" in text

    def test_http_metrics_route(self, saved_model, small_problem):
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, max_wait_ms=0.5)
        server = create_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                text = response.read().decode("utf-8")
            validate_exposition(text)
        finally:
            server.shutdown()
            server.server_close()
            app.close()


class TestAccessLog:
    def test_structured_line_per_request(self, saved_model, caplog):
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, max_wait_ms=0.5)
        server = create_server(app, port=0, log_level="info")
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with caplog.at_level(logging.INFO, logger="repro.serve.access"):
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/v1/healthz", timeout=10
                ) as response:
                    assert response.status == 200
        finally:
            server.shutdown()
            server.server_close()
            app.close()
        lines = [
            record.getMessage()
            for record in caplog.records
            if record.name == "repro.serve.access"
        ]
        assert any(
            "method=GET" in line
            and "path=/v1/healthz" in line
            and "status=200" in line
            and "dur_ms=" in line
            for line in lines
        )

    def test_rejects_unknown_level(self, saved_model):
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, max_wait_ms=0.5)
        try:
            with pytest.raises(ValueError, match="log level"):
                create_server(app, port=0, log_level="loud")
        finally:
            app.close()
