"""Packed-kernel predictions must match dense predictions bit-for-bit.

The whole point of the kernel-layer refactor is that the packed XOR+popcount
path is a *re-implementation*, not an approximation: for every classifier the
packed ``predict``/``top_k`` must equal the dense results exactly — including
the ensemble's max-over-sub-models rule (packed against its flat model
bank), classifiers whose bespoke scoring forces the dense fallback (the
non-binary cosine centroids), and the raw-feature nearest-centroid reference
that rides the linear kernel.
"""

import numpy as np
import pytest

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.nearest_centroid import NearestCentroidClassifier
from repro.classifiers.nonbinary import NonBinaryHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.core.configs import DEFAULT_CONFIG
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import RecordEncoder
from repro.kernels.dispatch import use_backend
from repro.kernels.packed import pack_bipolar
from repro.serve.engine import PackedInferenceEngine

FAST_LEHDC = DEFAULT_CONFIG.with_overrides(
    epochs=3, batch_size=32, validation_fraction=0.0
)

CLASSIFIER_FACTORIES = {
    "baseline": lambda: BaselineHDC(seed=0),
    "adapthd": lambda: AdaptHDC(iterations=5, seed=0),
    "lehdc": lambda: LeHDCClassifier(config=FAST_LEHDC, seed=0),
    "multimodel": lambda: MultiModelHDC(models_per_class=4, iterations=2, seed=0),
    "nonbinary": lambda: NonBinaryHDC(seed=0),
}


@pytest.fixture(scope="module", params=sorted(CLASSIFIER_FACTORIES))
def fitted(request, small_problem):
    """One fitted (classifier, encoded splits) bundle per strategy."""
    encoder = RecordEncoder(dimension=512, num_levels=16, tie_break="positive", seed=1)
    encoder.fit(small_problem["train_features"])
    train_encoded = encoder.encode(small_problem["train_features"])
    test_encoded = encoder.encode(small_problem["test_features"])
    classifier = CLASSIFIER_FACTORIES[request.param]()
    classifier.fit(train_encoded, small_problem["train_labels"])
    return {
        "name": request.param,
        "encoder": encoder,
        "classifier": classifier,
        "test_encoded": test_encoded,
        "test_features": small_problem["test_features"],
    }


class TestClassifierPackedParity:
    def test_packed_predict_matches_dense(self, fitted):
        classifier = fitted["classifier"]
        dense = classifier.predict(fitted["test_encoded"])
        if classifier.supports_packed_scoring():
            packed = classifier.predict_packed(pack_bipolar(fitted["test_encoded"]))
            np.testing.assert_array_equal(packed, dense)
        else:
            # Bespoke scoring with no packed twin (non-binary cosine): the
            # packed path must refuse rather than silently produce different
            # predictions.
            with pytest.raises(ValueError, match="decision_scores"):
                classifier.predict_packed(pack_bipolar(fitted["test_encoded"]))

    def test_packed_scores_match_dense_exactly(self, fitted):
        classifier = fitted["classifier"]
        if not classifier.supports_packed_scoring():
            pytest.skip("dense-only scoring rule")
        dense = classifier.decision_scores(fitted["test_encoded"])
        packed = classifier.decision_scores_packed(
            pack_bipolar(fitted["test_encoded"])
        )
        np.testing.assert_array_equal(packed, dense)

    def test_threaded_backend_is_bit_identical(self, fitted):
        classifier = fitted["classifier"]
        if not classifier.supports_packed_scoring():
            pytest.skip("dense-only scoring rule")
        packed_queries = pack_bipolar(fitted["test_encoded"])
        expected = classifier.decision_scores_packed(packed_queries)
        with use_backend("threaded"):
            np.testing.assert_array_equal(
                classifier.decision_scores_packed(packed_queries), expected
            )


class TestPipelinePackedParity:
    def test_pipeline_packed_vs_dense_predict_and_top_k(self, fitted):
        encoder = fitted["encoder"]
        pipeline_packed = HDCPipeline(encoder, fitted["classifier"], prefer_packed=True)
        pipeline_dense = HDCPipeline(encoder, fitted["classifier"], prefer_packed=False)
        pipeline_packed._fitted = True
        pipeline_dense._fitted = True
        features = fitted["test_features"]

        np.testing.assert_array_equal(
            pipeline_packed.predict(features), pipeline_dense.predict(features)
        )
        packed_labels, packed_scores = pipeline_packed.top_k(features, k=3)
        dense_labels, dense_scores = pipeline_dense.top_k(features, k=3)
        np.testing.assert_array_equal(packed_labels, dense_labels)
        np.testing.assert_array_equal(packed_scores, dense_scores)
        packed_batch = pipeline_packed.predict_batch(features)
        dense_batch = pipeline_dense.predict_batch(features)
        np.testing.assert_array_equal(packed_batch[0], dense_batch[0])
        np.testing.assert_array_equal(packed_batch[1], dense_batch[1])


class TestEnginePackedParity:
    def test_engine_matches_pipeline_bit_for_bit(self, fitted):
        pipeline = HDCPipeline(fitted["encoder"], fitted["classifier"])
        pipeline._fitted = True
        engine = PackedInferenceEngine(pipeline, name=fitted["name"])
        features = fitted["test_features"]
        np.testing.assert_array_equal(
            engine.predict(features), pipeline.predict(features)
        )
        engine_labels, _ = engine.top_k(features, k=3)
        pipeline_labels, _ = pipeline.top_k(features, k=3)
        np.testing.assert_array_equal(engine_labels, pipeline_labels)
        expected_mode = (
            "packed" if fitted["classifier"].supports_packed_scoring() else "dense"
        )
        assert engine.mode == expected_mode


class TestNearestCentroidParity:
    """The raw-feature reference classifier rides the linear kernel."""

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_kernel_matmul_matches_direct_computation(self, small_problem, metric):
        classifier = NearestCentroidClassifier(metric=metric)
        classifier.fit(small_problem["train_features"], small_problem["train_labels"])
        features = small_problem["test_features"]
        predictions = classifier.predict(features)
        with use_backend("threaded"):
            threaded = classifier.predict(features)
        np.testing.assert_array_equal(predictions, threaded)
        # Reference: direct float64 computation against the centroids.
        if metric == "euclidean":
            distances = ((features[:, None, :] - classifier.centroids_[None]) ** 2).sum(
                axis=2
            )
            np.testing.assert_array_equal(predictions, np.argmin(distances, axis=1))
