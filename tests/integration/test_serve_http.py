"""Integration test: the HTTP serving front-end round-trips real requests.

Starts the stdlib server on an ephemeral port, registers a model trained and
saved through the normal pipeline/io path, and checks every route — in
particular that ``POST /v1/predict`` returns the same labels as the offline
``pipeline.predict`` for the same model.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.io import save_model
from repro.serve import ModelRegistry, ServeApp, create_server


@pytest.fixture(scope="module")
def served(small_problem, tmp_path_factory):
    """A running server (ephemeral port) fronting one saved model."""
    encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    path = save_model(
        tmp_path_factory.mktemp("serve") / "har.npz", pipeline, strategy_name="baseline"
    )

    registry = ModelRegistry()
    registry.register("har", path)
    app = ServeApp(registry, max_batch_size=16, max_wait_ms=2.0)
    server = create_server(app, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": port, "pipeline": pipeline}
    server.shutdown()
    server.server_close()
    app.close()


def _get(port, route):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{route}", timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(port, route, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{route}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, served):
        status, body = _get(served["port"], "/v1/healthz")
        assert status == 200
        assert body == {"status": "ok", "models": 1}

    def test_models_listing(self, served):
        status, body = _get(served["port"], "/v1/models")
        assert status == 200
        (row,) = body["models"]
        assert row["name"] == "har"
        assert row["strategy"] == "baseline"

    def test_unknown_route_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served["port"], "/v1/nonsense")
        assert excinfo.value.code == 404


class TestPredict:
    def test_single_sample_matches_offline_pipeline(self, served, small_problem):
        row = small_problem["test_features"][0]
        status, body = _post(served["port"], "/v1/predict", {"features": row.tolist()})
        assert status == 200
        expected = int(served["pipeline"].predict(row)[0])
        assert body["labels"] == [expected]
        assert body["model"] == "har"
        assert body["latency_ms"] > 0

    def test_client_batch_matches_offline_pipeline(self, served, small_problem):
        batch = small_problem["test_features"][:10]
        status, body = _post(
            served["port"], "/v1/predict", {"model": "har", "features": batch.tolist()}
        )
        assert status == 200
        np.testing.assert_array_equal(
            body["labels"], served["pipeline"].predict(batch)
        )

    def test_top_k_payload(self, served, small_problem):
        row = small_problem["test_features"][0]
        status, body = _post(
            served["port"], "/v1/predict", {"features": row.tolist(), "top_k": 3}
        )
        assert status == 200
        assert len(body["top_k_labels"][0]) == 3
        assert len(body["top_k_scores"][0]) == 3
        assert body["top_k_labels"][0][0] == body["labels"][0]

    def test_concurrent_requests_all_correct(self, served, small_problem):
        queries = small_problem["test_features"][:24]
        expected = served["pipeline"].predict(queries)

        def call(row):
            _, body = _post(served["port"], "/v1/predict", {"features": row.tolist()})
            return body["labels"][0]

        with ThreadPoolExecutor(max_workers=8) as pool:
            got = list(pool.map(call, queries))
        np.testing.assert_array_equal(got, expected)

    def test_metrics_populated_after_traffic(self, served):
        status, body = _get(served["port"], "/v1/metrics")
        assert status == 200
        model = body["models"]["har"]
        assert model["requests"] > 0
        assert model["latency"]["count"] > 0


class TestPredictErrors:
    def test_missing_features_400(self, served):
        status, body = _post(served["port"], "/v1/predict", {"model": "har"})
        assert status == 400
        assert "features" in body["error"]

    def test_unknown_model_404(self, served, small_problem):
        row = small_problem["test_features"][0]
        status, body = _post(
            served["port"], "/v1/predict", {"model": "nope", "features": row.tolist()}
        )
        assert status == 404

    def test_wrong_feature_width_400(self, served):
        status, body = _post(served["port"], "/v1/predict", {"features": [1.0, 2.0]})
        assert status == 400

    def test_bad_top_k_400(self, served, small_problem):
        row = small_problem["test_features"][0]
        status, _ = _post(
            served["port"], "/v1/predict", {"features": row.tolist(), "top_k": 0}
        )
        assert status == 400

    def test_error_responses_close_keepalive_connection(self, served):
        # Error paths may leave an unread body on a persistent connection;
        # the server must signal Connection: close so the client cannot
        # misparse the leftover bytes as the next request.
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", served["port"], timeout=10)
        try:
            connection.request(
                "POST", "/v1/predict", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_invalid_json_400(self, served):
        request = urllib.request.Request(
            f"http://127.0.0.1:{served['port']}/v1/predict",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_error_bodies_carry_machine_readable_codes(self, served, small_problem):
        row = small_problem["test_features"][0]
        _, body = _post(served["port"], "/v1/predict", {"model": "har"})
        assert body["code"] == "bad_request"
        _, body = _post(
            served["port"], "/v1/predict", {"model": "nope", "features": row.tolist()}
        )
        assert body["code"] == "not_found"


@pytest.fixture()
def hardened(small_problem):
    """A server with admission control, deadlines, and the access log on."""
    import logging

    from repro.serve import PackedInferenceEngine

    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=3)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=3))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    registry = ModelRegistry()
    registry.register("har", PackedInferenceEngine(pipeline, name="har"))
    app = ServeApp(
        registry,
        max_batch_size=16,
        max_wait_ms=0.5,
        cache_size=0,
        max_concurrent=2,
        max_queue_depth=64,
    )
    server = create_server(app, port=0, log_level="info")
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield {"port": port, "app": app, "server": server}
    server.shutdown()
    server.server_close()
    app.close()
    # Detach the handler create_server added so repeated fixtures don't stack.
    logging.getLogger("repro.serve.access").handlers.clear()


def _wait_for_log_line(caplog, *needles, timeout=2.0):
    """The access-log line is written by the server thread after the response
    is sent, so the client can observe the response before the record exists
    — poll briefly instead of asserting immediately.
    """
    import time

    deadline = time.monotonic() + timeout
    while True:
        lines = [record.getMessage() for record in caplog.records]
        if any(all(needle in line for needle in needles) for line in lines):
            return
        if time.monotonic() >= deadline:
            raise AssertionError(f"no log line containing {needles}: {lines}")
        time.sleep(0.01)


class TestRobustness:
    def test_readyz_reports_ready(self, hardened):
        status, body = _get(hardened["port"], "/v1/readyz")
        assert status == 200
        assert body["status"] == "ready"

    def test_shed_answers_429_with_code_and_retry_after(
        self, hardened, small_problem, caplog
    ):
        import logging

        row = small_problem["test_features"][0]
        app = hardened["app"]
        slot = app._admission_slot("har")
        # Exhaust both admission slots so the next request must shed.
        assert slot.acquire(blocking=False)
        assert slot.acquire(blocking=False)
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{hardened['port']}/v1/predict",
                data=json.dumps({"features": row.tolist()}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with caplog.at_level(logging.INFO, logger="repro.serve.access"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert body["code"] == "overloaded"
        finally:
            slot.release()
            slot.release()
        # The structured access log must make the shed greppable.
        _wait_for_log_line(caplog, "status=429", "code=overloaded")

    def test_expired_deadline_answers_504_with_code(
        self, hardened, small_problem, caplog
    ):
        import logging

        row = small_problem["test_features"][0]
        with caplog.at_level(logging.INFO, logger="repro.serve.access"):
            status, body = _post(
                hardened["port"],
                "/v1/predict",
                {"features": row.tolist(), "deadline_ms": 1e-6},
            )
        assert status == 504
        assert body["code"] == "deadline_exceeded"
        _wait_for_log_line(caplog, "status=504", "code=deadline_exceeded")
        metrics = hardened["app"].metrics_snapshot()
        assert metrics["models"]["har"]["deadline_exceeded"] == 1

    def test_drain_flips_readyz_and_rejects_new_requests(
        self, hardened, small_problem
    ):
        row = small_problem["test_features"][0]
        status, _ = _get(hardened["port"], "/v1/readyz")
        assert status == 200
        hardened["app"].begin_drain()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(hardened["port"], "/v1/readyz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["status"] == "draining"
        status, body = _post(
            hardened["port"], "/v1/predict", {"features": row.tolist()}
        )
        assert status == 503
        assert body["code"] == "draining"
