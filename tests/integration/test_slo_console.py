"""Integration: SLO verdicts, merged fleet percentiles, and ``repro top``.

The tentpole acceptance check lives here: on a two-worker cluster run, the
merged-sketch fleet scoring percentiles published in ``/v1/metrics`` must
agree with *exact* percentiles computed over the pooled per-shard scoring
durations — recoverable bit-for-bit from the ``worker:score`` trace spans,
because the worker records the same ``elapsed`` into both the stats slab
and the span.  Alongside it: per-tenant SLO verdicts on real traffic,
``tenant=``/``trace_id=`` in the access log, and the ``repro top`` console
driven by a live server.
"""

from __future__ import annotations

import io
import json
import logging
import math
import threading
import urllib.request

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.io import save_model
from repro.obs import MemorySink, SLOConfig, Tracer, run_console
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY
from repro.serve import ModelRegistry, ServeApp, create_server


@pytest.fixture(scope="module")
def saved_model(small_problem, tmp_path_factory):
    encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return save_model(
        tmp_path_factory.mktemp("slo") / "baseline.npz",
        pipeline,
        strategy_name="baseline",
    )


def _exact_percentile(samples, p):
    """Nearest-rank percentile, matching ``QuantileSketch.percentile``."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class TestFleetPercentileAccuracy:
    def test_merged_percentiles_match_pooled_exact_on_two_workers(
        self, saved_model, small_problem
    ):
        """Acceptance: fleet p50/p95/p99 vs pooled exact, two workers."""
        sink = MemorySink()
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(
            registry,
            tracer=Tracer(sink, sample_rate=1.0),
            max_wait_ms=0.5,
            num_processes=2,
            cache_size=0,
        )
        try:
            # Client batches shard across both workers: every request feeds
            # two per-shard samples into two different worker slabs.
            queries = small_problem["test_features"][:8].tolist()
            for _ in range(40):
                app.predict({"features": queries})
            snapshot = app.metrics_snapshot()
        finally:
            app.close()

        fleet = snapshot["cluster"]["baseline@v1"]["workers"]["fleet"]
        pooled_ms = [
            span["dur_ms"] for span in sink.records if span["name"] == "worker:score"
        ]
        # The worker records the identical elapsed into the slab sketch and
        # the worker:score span, so the trace gives us the exact pooled
        # sample stream the merged sketch summarised.
        assert len(pooled_ms) == fleet["requests"]
        assert len(pooled_ms) >= 80
        for p, key in ((50, "scoring_p50_ms"), (95, "scoring_p95_ms"), (99, "scoring_p99_ms")):
            exact = _exact_percentile(pooled_ms, p)
            merged = fleet[key]
            assert merged == pytest.approx(
                exact, rel=DEFAULT_RELATIVE_ACCURACY, abs=1e-6
            ), f"fleet {key}={merged} vs pooled exact p{p}={exact}"

        # The per-worker breakdown brackets the merged view: the pooled p99
        # can never exceed the worst worker's p99 (the classic bug this
        # design removes was averaging the per-worker values instead).
        per_worker = snapshot["cluster"]["baseline@v1"]["workers"]["per_worker"]
        assert len(per_worker) == 2
        worst = max(w["scoring_p99_ms"] for w in per_worker)
        assert fleet["scoring_p99_ms"] <= worst * (1.0 + 2 * DEFAULT_RELATIVE_ACCURACY)


class TestServeSLO:
    def test_verdicts_on_real_traffic_and_client_fault_exemption(
        self, saved_model, small_problem
    ):
        config = SLOConfig.from_dict(
            {
                "default": {"availability": 0.99, "latency_ms": 60_000.0},
                "tenants": {"baseline": {"latency_percentile": 95.0}},
            }
        )
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, max_wait_ms=0.5, cache_size=0, slo_config=config)
        try:
            row = small_problem["test_features"][0].tolist()
            for _ in range(10):
                app.predict({"features": row})
            # Client faults (bad payload, unknown model) are exempt: they
            # must not spend the tenant's error budget.
            from repro.serve.server import RequestError

            with pytest.raises(RequestError):
                app.predict({"features": row, "model": "nope"})
            with pytest.raises(RequestError):
                app.predict({})
            snapshot = app.metrics_snapshot()
        finally:
            app.close()

        slo = snapshot["slo"]
        tenant = slo["tenants"]["baseline"]
        assert tenant["requests"] == 10
        assert tenant["bad_requests"] == 0
        assert tenant["verdict"] == "ok"
        assert tenant["budget_remaining"] == pytest.approx(1.0)
        assert tenant["spec"]["latency_percentile"] == 95.0
        assert tenant["latency"]["count"] == 10
        assert 0.0 < tenant["latency"]["p50_ms"] <= tenant["latency"]["p99_ms"]
        assert set(slo["tenants"]) == {"baseline"}

    def test_failures_spend_budget_and_flip_the_verdict(self, saved_model):
        config = SLOConfig.from_dict({"default": {"availability": 0.999}})
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, max_wait_ms=0.5, slo_config=config)
        try:
            # Overload rejections (429) are server-attributed: drive them
            # straight through the engine's SLO hook.
            for _ in range(50):
                app.slo.record("baseline", ok=False, latency_s=0.001)
            snapshot = app.metrics_snapshot()
        finally:
            app.close()
        tenant = snapshot["slo"]["tenants"]["baseline"]
        assert tenant["bad_requests"] == 50
        assert tenant["budget_remaining"] == 0.0
        assert tenant["verdict"] == "breached"


class TestAccessLogTenantTrace:
    def _serve(self, saved_model):
        sink = MemorySink()
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(registry, tracer=Tracer(sink, sample_rate=1.0), max_wait_ms=0.5)
        server = create_server(app, port=0, log_level="info")
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return app, server, port

    def test_success_line_carries_tenant_and_trace_id(
        self, saved_model, small_problem, caplog
    ):
        app, server, port = self._serve(saved_model)
        try:
            body = json.dumps(
                {"features": small_problem["test_features"][0].tolist()}
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with caplog.at_level(logging.INFO, logger="repro.serve.access"):
                with urllib.request.urlopen(request, timeout=10) as response:
                    payload = json.loads(response.read())
        finally:
            server.shutdown()
            server.server_close()
            app.close()
        lines = [
            r.getMessage() for r in caplog.records if r.name == "repro.serve.access"
        ]
        assert any(
            "status=200" in line
            and "tenant=baseline" in line
            and f"trace_id={payload['trace_id']}" in line
            for line in lines
        ), lines

    def test_error_line_carries_tenant(self, saved_model, small_problem, caplog):
        app, server, port = self._serve(saved_model)
        try:
            body = json.dumps(
                {
                    "features": small_problem["test_features"][0].tolist(),
                    "model": "missing",
                }
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with caplog.at_level(logging.INFO, logger="repro.serve.access"):
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(request, timeout=10)
        finally:
            server.shutdown()
            server.server_close()
            app.close()
        lines = [
            r.getMessage() for r in caplog.records if r.name == "repro.serve.access"
        ]
        assert any(
            "status=404" in line and "tenant=missing" in line for line in lines
        ), lines


class TestConsoleAgainstLiveServer:
    def test_top_once_json_renders_the_live_fleet(self, saved_model, small_problem):
        registry = ModelRegistry()
        registry.register("baseline", saved_model)
        app = ServeApp(
            registry,
            max_wait_ms=0.5,
            num_processes=2,
            cache_size=0,
            slo_config=SLOConfig(),
        )
        server = create_server(app, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            queries = small_problem["test_features"][:8].tolist()
            body = json.dumps({"features": queries}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200

            stream = io.StringIO()
            code = run_console(
                f"http://127.0.0.1:{port}", once=True, as_json=True, stream=stream
            )
            assert code == 0
            view = json.loads(stream.getvalue())
            tenants = {t["tenant"]: t for t in view["tenants"]}
            assert tenants["baseline"]["requests"] >= 1
            assert tenants["baseline"]["verdict"] == "ok"
            assert any(w["workers"] == 2 for w in view["workers"])

            # The human-facing render against the same live endpoint.
            plain = io.StringIO()
            assert run_console(f"http://127.0.0.1:{port}", once=True, stream=plain) == 0
            assert "TENANT" in plain.getvalue()
            assert "baseline" in plain.getvalue()
        finally:
            server.shutdown()
            server.server_close()
            app.close()
