"""Integration tests asserting the paper's qualitative claims about strategy ordering.

These are the repository's "shape of Table 1 / Fig. 3 / Fig. 6" checks at
test scale (small D, few epochs): LeHDC >= retraining >= roughly baseline,
enhanced retraining more stable than basic retraining, and LeHDC degrading
gracefully as the dimension shrinks.
"""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import RecordEncoder


@pytest.fixture(scope="module")
def encoded_multimodal(multimodal_problem):
    encoder = RecordEncoder(dimension=2048, num_levels=16, seed=31)
    encoder.fit(multimodal_problem["train_features"])
    return {
        "train": encoder.encode(multimodal_problem["train_features"]),
        "train_labels": multimodal_problem["train_labels"],
        "test": encoder.encode(multimodal_problem["test_features"]),
        "test_labels": multimodal_problem["test_labels"],
    }


LEHDC_CONFIG = LeHDCConfig(
    epochs=30, batch_size=32, dropout_rate=0.2, weight_decay=0.02, learning_rate=0.01
)


class TestTable1Shape:
    def test_lehdc_beats_baseline(self, encoded_multimodal):
        baseline = BaselineHDC(seed=0).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        lehdc = LeHDCClassifier(config=LEHDC_CONFIG, seed=0).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        baseline_accuracy = baseline.score(
            encoded_multimodal["test"], encoded_multimodal["test_labels"]
        )
        lehdc_accuracy = lehdc.score(
            encoded_multimodal["test"], encoded_multimodal["test_labels"]
        )
        assert lehdc_accuracy > baseline_accuracy

    def test_lehdc_at_least_matches_retraining(self, encoded_multimodal):
        retraining = RetrainingHDC(iterations=20, seed=1).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        lehdc = LeHDCClassifier(config=LEHDC_CONFIG, seed=1).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        retraining_accuracy = retraining.score(
            encoded_multimodal["test"], encoded_multimodal["test_labels"]
        )
        lehdc_accuracy = lehdc.score(
            encoded_multimodal["test"], encoded_multimodal["test_labels"]
        )
        assert lehdc_accuracy >= retraining_accuracy - 0.03

    def test_retraining_improves_training_fit_over_baseline(self, encoded_multimodal):
        baseline = BaselineHDC(seed=2).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        retraining = RetrainingHDC(iterations=20, seed=2).fit(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )
        assert retraining.score(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        ) >= baseline.score(
            encoded_multimodal["train"], encoded_multimodal["train_labels"]
        )


class TestFig3Shape:
    def test_enhanced_retraining_is_no_less_stable(self, encoded_multimodal):
        basic = RetrainingHDC(iterations=15, epsilon=0.0, seed=3)
        basic.fit(
            encoded_multimodal["train"],
            encoded_multimodal["train_labels"],
            validation_hypervectors=encoded_multimodal["test"],
            validation_labels=encoded_multimodal["test_labels"],
        )
        enhanced = EnhancedRetrainingHDC(iterations=15, epsilon=0.0, seed=3)
        enhanced.fit(
            encoded_multimodal["train"],
            encoded_multimodal["train_labels"],
            validation_hypervectors=encoded_multimodal["test"],
            validation_labels=encoded_multimodal["test_labels"],
        )

        def oscillation(history):
            tail = np.asarray(history.train_accuracy[len(history.train_accuracy) // 2 :])
            return float(np.mean(np.abs(np.diff(tail)))) if tail.size > 1 else 0.0

        # The enhanced strategy's final accuracy should not be worse, and its
        # oscillation should not be dramatically larger.
        assert enhanced.history_.train_accuracy[-1] >= basic.history_.train_accuracy[-1] - 0.05
        assert oscillation(enhanced.history_) <= oscillation(basic.history_) + 0.05


class TestFig6Shape:
    def test_lehdc_degrades_gracefully_with_dimension(self, multimodal_problem):
        accuracies = {}
        for dimension in (256, 2048):
            encoder = RecordEncoder(dimension=dimension, num_levels=16, seed=41)
            encoder.fit(multimodal_problem["train_features"])
            train_encoded = encoder.encode(multimodal_problem["train_features"])
            test_encoded = encoder.encode(multimodal_problem["test_features"])
            model = LeHDCClassifier(config=LEHDC_CONFIG, seed=41).fit(
                train_encoded, multimodal_problem["train_labels"]
            )
            accuracies[dimension] = model.score(
                test_encoded, multimodal_problem["test_labels"]
            )
        # Larger dimension should not be (much) worse, and even the small
        # dimension should stay well above chance — the Fig. 6 scalability story.
        assert accuracies[2048] >= accuracies[256] - 0.05
        assert accuracies[256] > 0.5
