"""Packed training must match the sequential training loops bit for bit.

The packed training paths (epoch scoring over packed words + ordered
scatter-add for the retraining family; incremental packed scoring for the
multi-model ensemble — ``repro.kernels.train``) are *re-implementations* of
the seed's per-sample loops, not approximations: with the same seed they must
produce an identical :class:`~repro.classifiers.retraining.RetrainingHistory`,
identical binary class hypervectors / model banks, identical float
accumulators — and, for the ensemble, an identical RNG stream (every
permutation, bootstrap choice, flip choice and ``sgn(0)`` tie draw replays in
order) — with and without shuffling (the scatter-add replays the visit
order, so even the shuffled trajectories coincide draw for draw).
"""

import numpy as np
import pytest

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.kernels.train import PackedTrainingSet

RETRAINING_FACTORIES = {
    "retraining": lambda packed, shuffle: RetrainingHDC(
        iterations=6, epsilon=0.0, shuffle=shuffle, packed_epochs=packed, seed=3
    ),
    "adapthd-data": lambda packed, shuffle: AdaptHDC(
        iterations=5, mode="data", shuffle=shuffle, packed_epochs=packed, seed=4
    ),
    "adapthd-iteration": lambda packed, shuffle: AdaptHDC(
        iterations=5, mode="iteration", shuffle=shuffle, packed_epochs=packed, seed=5
    ),
    "enhanced": lambda packed, shuffle: EnhancedRetrainingHDC(
        iterations=5, epsilon=0.0, shuffle=shuffle, packed_epochs=packed, seed=6
    ),
}


def assert_same_training(packed_model, sequential_model, expect_validation=False):
    packed_history = packed_model.history_
    sequential_history = sequential_model.history_
    assert packed_history.train_accuracy == sequential_history.train_accuracy
    assert packed_history.update_fraction == sequential_history.update_fraction
    assert packed_history.test_accuracy == sequential_history.test_accuracy
    if expect_validation:
        assert packed_history.test_accuracy  # trajectories were recorded
    np.testing.assert_array_equal(
        packed_model.class_hypervectors_, sequential_model.class_hypervectors_
    )
    np.testing.assert_array_equal(
        packed_model.nonbinary_class_hypervectors_,
        sequential_model.nonbinary_class_hypervectors_,
    )


class TestRetrainingPackedParity:
    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    @pytest.mark.parametrize("shuffle", [False, True])
    def test_identical_history_and_model(self, encoded_problem, name, shuffle):
        factory = RETRAINING_FACTORIES[name]
        packed_model = factory(True, shuffle).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        sequential_model = factory(False, shuffle).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert_same_training(packed_model, sequential_model)

    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    def test_identical_validation_trajectory(self, encoded_problem, name):
        factory = RETRAINING_FACTORIES[name]
        fit_kwargs = dict(
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
        )
        packed_model = factory(True, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            **fit_kwargs,
        )
        sequential_model = factory(False, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            **fit_kwargs,
        )
        assert_same_training(packed_model, sequential_model, expect_validation=True)

    def test_early_stop_iteration_count_matches(self, encoded_problem):
        for packed in (True, False):
            model = RetrainingHDC(
                iterations=50, epsilon=1.0, packed_epochs=packed, seed=8
            ).fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            assert model.history_.iterations <= 2

    def test_shuffled_runs_reach_statistical_parity(self, encoded_problem):
        """Different visit orders (different seeds) agree within tolerance.

        Bit-identity above covers same-seed runs; this documents that the
        packed path's *statistical* behaviour under shuffling matches the
        sequential loop across seeds, which is what sweep aggregates rely on.
        """
        packed_final = [
            RetrainingHDC(iterations=5, epsilon=0.0, shuffle=True, seed=seed)
            .fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            .history_.train_accuracy[-1]
            for seed in range(3)
        ]
        sequential_final = [
            RetrainingHDC(
                iterations=5, epsilon=0.0, shuffle=True, packed_epochs=False, seed=seed + 100
            )
            .fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            .history_.train_accuracy[-1]
            for seed in range(3)
        ]
        assert abs(np.mean(packed_final) - np.mean(sequential_final)) < 0.05

    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    def test_shared_packed_train_is_equivalent(self, encoded_problem, name):
        factory = RETRAINING_FACTORIES[name]
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        with_shared = factory(True, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        without_shared = factory(True, True).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert_same_training(with_shared, without_shared)

    def test_packed_epochs_false_wins_over_shared_packed_train(
        self, encoded_problem, monkeypatch
    ):
        """The sequential-loop opt-out holds even under experiment loops."""
        monkeypatch.setattr(
            RetrainingHDC,
            "_fit_packed",
            lambda self, *args, **kwargs: pytest.fail(
                "packed path taken despite packed_epochs=False"
            ),
        )
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        model = RetrainingHDC(iterations=2, packed_epochs=False, seed=9).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        assert model.history_.iterations == 2

    def test_packed_train_shape_mismatch_raises(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(
            encoded_problem["train_hypervectors"][:10]
        )
        with pytest.raises(ValueError, match="does not match"):
            RetrainingHDC(iterations=2, seed=10).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_packed_train_content_mismatch_raises(self, encoded_problem):
        """Same shape but different data (e.g. the wrong split) is caught."""
        wrong_split = -encoded_problem["train_hypervectors"]
        train_set = PackedTrainingSet.from_dense(wrong_split)
        with pytest.raises(ValueError, match="content does not match"):
            RetrainingHDC(iterations=2, seed=10).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_non_bipolar_input_falls_back_to_sequential(self):
        rng = np.random.default_rng(0)
        # Ternary "hypervectors" are outside the packed kernels' domain; the
        # classifier must silently take the sequential loop and still fit.
        hypervectors = rng.integers(-1, 2, size=(60, 128)).astype(np.int8)
        labels = rng.integers(0, 3, size=60)
        model = RetrainingHDC(iterations=2, seed=11).fit(hypervectors, labels)
        assert model.history_.iterations == 2
        assert model.class_hypervectors_.shape == (3, 128)

    def test_custom_update_subclass_keeps_sequential_semantics(self, encoded_problem):
        """Overriding ``_update`` alone must not silently change behaviour."""

        class PullOnly(RetrainingHDC):
            def _update(self, nonbinary, sample, true_label, predicted, alpha, scores):
                nonbinary[true_label] += alpha * sample

        model = PullOnly(iterations=3, epsilon=0.0, seed=12)
        assert not model._has_vectorised_updates()
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.history_.iterations == 3

    def test_iteration_seconds_recorded_on_both_paths(self, encoded_problem):
        for packed in (True, False):
            model = RetrainingHDC(
                iterations=3, epsilon=0.0, packed_epochs=packed, seed=13
            ).fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            seconds = model.history_.iteration_seconds
            assert len(seconds) == model.history_.iterations
            assert all(value >= 0.0 for value in seconds)


class TestBaselinePackedParity:
    def test_bundle_packed_fit_matches_dense_fit(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        dense = BaselineHDC(seed=2).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        packed = BaselineHDC(seed=2).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        np.testing.assert_array_equal(dense.accumulators_, packed.accumulators_)
        np.testing.assert_array_equal(
            dense.class_hypervectors_, packed.class_hypervectors_
        )

    def test_packed_train_shape_mismatch_raises(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(
            encoded_problem["train_hypervectors"][:10]
        )
        with pytest.raises(ValueError, match="does not match"):
            BaselineHDC(seed=2).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_supports_packed_training_flags(self, encoded_problem):
        assert BaselineHDC().supports_packed_training()
        assert RetrainingHDC().supports_packed_training()
        assert AdaptHDC().supports_packed_training()
        assert EnhancedRetrainingHDC().supports_packed_training()
        assert MultiModelHDC().supports_packed_training()


@pytest.fixture(scope="module")
def noisy_ensemble_problem(encoded_problem):
    """The encoded problem with 20% label noise mixed in.

    The clean fixture is separable enough that the bootstrap-initialised
    ensemble classifies every sample correctly and no stochastic update ever
    fires; noisy labels keep a steady share of samples misclassified so the
    parity tests actually exercise the flip updates and the incremental
    score-column maintenance.
    """
    rng = np.random.default_rng(77)
    labels = np.array(encoded_problem["train_labels"])
    flips = rng.random(labels.size) < 0.2
    num_classes = encoded_problem["num_classes"]
    labels[flips] = (
        labels[flips] + rng.integers(1, num_classes, size=int(flips.sum()))
    ) % num_classes
    return {
        "hypervectors": encoded_problem["train_hypervectors"],
        "labels": labels,
    }


class TestMultiModelPackedParity:
    """The ensemble's incremental packed trainer vs the seed per-sample loop."""

    @pytest.mark.parametrize("push_away", [False, True])
    def test_identical_models_history_and_rng_stream(
        self, noisy_ensemble_problem, push_away
    ):
        def factory(packed):
            return MultiModelHDC(
                models_per_class=4,
                iterations=3,
                push_away=push_away,
                packed_epochs=packed,
                seed=31,
            )

        packed_model = factory(True).fit(
            noisy_ensemble_problem["hypervectors"], noisy_ensemble_problem["labels"]
        )
        sequential_model = factory(False).fit(
            noisy_ensemble_problem["hypervectors"], noisy_ensemble_problem["labels"]
        )
        np.testing.assert_array_equal(
            packed_model.model_hypervectors_, sequential_model.model_hypervectors_
        )
        np.testing.assert_array_equal(
            packed_model.class_hypervectors_, sequential_model.class_hypervectors_
        )
        assert (
            packed_model.history_.train_accuracy
            == sequential_model.history_.train_accuracy
        )
        assert (
            packed_model.history_.update_fraction
            == sequential_model.history_.update_fraction
        )
        # Updates must actually have fired, or this test proves nothing.
        assert any(value > 0 for value in packed_model.history_.update_fraction)
        # Same draws in the same order leave the generators in the same state.
        assert (
            packed_model.rng.bit_generator.state
            == sequential_model.rng.bit_generator.state
        )

    def test_shared_packed_train_is_equivalent(self, noisy_ensemble_problem):
        train_set = PackedTrainingSet.from_dense(
            noisy_ensemble_problem["hypervectors"]
        )
        with_shared = MultiModelHDC(models_per_class=3, iterations=2, seed=5).fit(
            noisy_ensemble_problem["hypervectors"],
            noisy_ensemble_problem["labels"],
            packed_train=train_set,
        )
        without_shared = MultiModelHDC(models_per_class=3, iterations=2, seed=5).fit(
            noisy_ensemble_problem["hypervectors"], noisy_ensemble_problem["labels"]
        )
        np.testing.assert_array_equal(
            with_shared.model_hypervectors_, without_shared.model_hypervectors_
        )

    def test_packed_epochs_false_wins_over_shared_packed_train(
        self, noisy_ensemble_problem, monkeypatch
    ):
        monkeypatch.setattr(
            MultiModelHDC,
            "_fit_packed",
            lambda self, *args, **kwargs: pytest.fail(
                "packed path taken despite packed_epochs=False"
            ),
        )
        train_set = PackedTrainingSet.from_dense(
            noisy_ensemble_problem["hypervectors"]
        )
        model = MultiModelHDC(
            models_per_class=2, iterations=1, packed_epochs=False, seed=6
        ).fit(
            noisy_ensemble_problem["hypervectors"],
            noisy_ensemble_problem["labels"],
            packed_train=train_set,
        )
        assert model.history_.iterations == 1

    def test_non_bipolar_input_falls_back_to_sequential(self):
        rng = np.random.default_rng(0)
        hypervectors = rng.integers(-1, 2, size=(60, 128)).astype(np.int8)
        labels = rng.integers(0, 3, size=60)
        model = MultiModelHDC(models_per_class=2, iterations=1, seed=7).fit(
            hypervectors, labels
        )
        assert model.model_hypervectors_.shape == (3, 2, 128)
        assert model.history_.iterations == 1

    def test_packed_train_content_mismatch_raises(self, noisy_ensemble_problem):
        wrong_split = -noisy_ensemble_problem["hypervectors"]
        train_set = PackedTrainingSet.from_dense(wrong_split)
        with pytest.raises(ValueError, match="content does not match"):
            MultiModelHDC(models_per_class=2, iterations=1, seed=8).fit(
                noisy_ensemble_problem["hypervectors"],
                noisy_ensemble_problem["labels"],
                packed_train=train_set,
            )

    def test_iteration_seconds_recorded_on_both_paths(self, noisy_ensemble_problem):
        for packed in (True, False):
            model = MultiModelHDC(
                models_per_class=2, iterations=2, packed_epochs=packed, seed=9
            ).fit(
                noisy_ensemble_problem["hypervectors"],
                noisy_ensemble_problem["labels"],
            )
            seconds = model.history_.iteration_seconds
            assert len(seconds) == model.history_.iterations == 2
            assert all(value >= 0.0 for value in seconds)
