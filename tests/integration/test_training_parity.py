"""Packed training must match the sequential retraining loop bit for bit.

The packed training path (epoch scoring over packed words + ordered
scatter-add, ``repro.kernels.train``) is a *re-implementation* of the seed's
per-sample loop, not an approximation: with the same seed it must produce an
identical :class:`~repro.classifiers.retraining.RetrainingHistory`, identical
binary class hypervectors, and identical float accumulators — for every
retraining classifier, with and without shuffling (the scatter-add replays
the visit order, so even the shuffled trajectories coincide draw for draw).
"""

import numpy as np
import pytest

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.kernels.train import PackedTrainingSet

RETRAINING_FACTORIES = {
    "retraining": lambda packed, shuffle: RetrainingHDC(
        iterations=6, epsilon=0.0, shuffle=shuffle, packed_epochs=packed, seed=3
    ),
    "adapthd-data": lambda packed, shuffle: AdaptHDC(
        iterations=5, mode="data", shuffle=shuffle, packed_epochs=packed, seed=4
    ),
    "adapthd-iteration": lambda packed, shuffle: AdaptHDC(
        iterations=5, mode="iteration", shuffle=shuffle, packed_epochs=packed, seed=5
    ),
    "enhanced": lambda packed, shuffle: EnhancedRetrainingHDC(
        iterations=5, epsilon=0.0, shuffle=shuffle, packed_epochs=packed, seed=6
    ),
}


def assert_same_training(packed_model, sequential_model, expect_validation=False):
    packed_history = packed_model.history_
    sequential_history = sequential_model.history_
    assert packed_history.train_accuracy == sequential_history.train_accuracy
    assert packed_history.update_fraction == sequential_history.update_fraction
    assert packed_history.test_accuracy == sequential_history.test_accuracy
    if expect_validation:
        assert packed_history.test_accuracy  # trajectories were recorded
    np.testing.assert_array_equal(
        packed_model.class_hypervectors_, sequential_model.class_hypervectors_
    )
    np.testing.assert_array_equal(
        packed_model.nonbinary_class_hypervectors_,
        sequential_model.nonbinary_class_hypervectors_,
    )


class TestRetrainingPackedParity:
    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    @pytest.mark.parametrize("shuffle", [False, True])
    def test_identical_history_and_model(self, encoded_problem, name, shuffle):
        factory = RETRAINING_FACTORIES[name]
        packed_model = factory(True, shuffle).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        sequential_model = factory(False, shuffle).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert_same_training(packed_model, sequential_model)

    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    def test_identical_validation_trajectory(self, encoded_problem, name):
        factory = RETRAINING_FACTORIES[name]
        fit_kwargs = dict(
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
        )
        packed_model = factory(True, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            **fit_kwargs,
        )
        sequential_model = factory(False, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            **fit_kwargs,
        )
        assert_same_training(packed_model, sequential_model, expect_validation=True)

    def test_early_stop_iteration_count_matches(self, encoded_problem):
        for packed in (True, False):
            model = RetrainingHDC(
                iterations=50, epsilon=1.0, packed_epochs=packed, seed=8
            ).fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            assert model.history_.iterations <= 2

    def test_shuffled_runs_reach_statistical_parity(self, encoded_problem):
        """Different visit orders (different seeds) agree within tolerance.

        Bit-identity above covers same-seed runs; this documents that the
        packed path's *statistical* behaviour under shuffling matches the
        sequential loop across seeds, which is what sweep aggregates rely on.
        """
        packed_final = [
            RetrainingHDC(iterations=5, epsilon=0.0, shuffle=True, seed=seed)
            .fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            .history_.train_accuracy[-1]
            for seed in range(3)
        ]
        sequential_final = [
            RetrainingHDC(
                iterations=5, epsilon=0.0, shuffle=True, packed_epochs=False, seed=seed + 100
            )
            .fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            .history_.train_accuracy[-1]
            for seed in range(3)
        ]
        assert abs(np.mean(packed_final) - np.mean(sequential_final)) < 0.05

    @pytest.mark.parametrize("name", sorted(RETRAINING_FACTORIES))
    def test_shared_packed_train_is_equivalent(self, encoded_problem, name):
        factory = RETRAINING_FACTORIES[name]
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        with_shared = factory(True, True).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        without_shared = factory(True, True).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert_same_training(with_shared, without_shared)

    def test_packed_epochs_false_wins_over_shared_packed_train(
        self, encoded_problem, monkeypatch
    ):
        """The sequential-loop opt-out holds even under experiment loops."""
        monkeypatch.setattr(
            RetrainingHDC,
            "_fit_packed",
            lambda self, *args, **kwargs: pytest.fail(
                "packed path taken despite packed_epochs=False"
            ),
        )
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        model = RetrainingHDC(iterations=2, packed_epochs=False, seed=9).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        assert model.history_.iterations == 2

    def test_packed_train_shape_mismatch_raises(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(
            encoded_problem["train_hypervectors"][:10]
        )
        with pytest.raises(ValueError, match="does not match"):
            RetrainingHDC(iterations=2, seed=10).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_packed_train_content_mismatch_raises(self, encoded_problem):
        """Same shape but different data (e.g. the wrong split) is caught."""
        wrong_split = -encoded_problem["train_hypervectors"]
        train_set = PackedTrainingSet.from_dense(wrong_split)
        with pytest.raises(ValueError, match="content does not match"):
            RetrainingHDC(iterations=2, seed=10).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_non_bipolar_input_falls_back_to_sequential(self):
        rng = np.random.default_rng(0)
        # Ternary "hypervectors" are outside the packed kernels' domain; the
        # classifier must silently take the sequential loop and still fit.
        hypervectors = rng.integers(-1, 2, size=(60, 128)).astype(np.int8)
        labels = rng.integers(0, 3, size=60)
        model = RetrainingHDC(iterations=2, seed=11).fit(hypervectors, labels)
        assert model.history_.iterations == 2
        assert model.class_hypervectors_.shape == (3, 128)

    def test_custom_update_subclass_keeps_sequential_semantics(self, encoded_problem):
        """Overriding ``_update`` alone must not silently change behaviour."""

        class PullOnly(RetrainingHDC):
            def _update(self, nonbinary, sample, true_label, predicted, alpha, scores):
                nonbinary[true_label] += alpha * sample

        model = PullOnly(iterations=3, epsilon=0.0, seed=12)
        assert not model._has_vectorised_updates()
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.history_.iterations == 3

    def test_iteration_seconds_recorded_on_both_paths(self, encoded_problem):
        for packed in (True, False):
            model = RetrainingHDC(
                iterations=3, epsilon=0.0, packed_epochs=packed, seed=13
            ).fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
            seconds = model.history_.iteration_seconds
            assert len(seconds) == model.history_.iterations
            assert all(value >= 0.0 for value in seconds)


class TestBaselinePackedParity:
    def test_bundle_packed_fit_matches_dense_fit(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(encoded_problem["train_hypervectors"])
        dense = BaselineHDC(seed=2).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        packed = BaselineHDC(seed=2).fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            packed_train=train_set,
        )
        np.testing.assert_array_equal(dense.accumulators_, packed.accumulators_)
        np.testing.assert_array_equal(
            dense.class_hypervectors_, packed.class_hypervectors_
        )

    def test_packed_train_shape_mismatch_raises(self, encoded_problem):
        train_set = PackedTrainingSet.from_dense(
            encoded_problem["train_hypervectors"][:10]
        )
        with pytest.raises(ValueError, match="does not match"):
            BaselineHDC(seed=2).fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                packed_train=train_set,
            )

    def test_supports_packed_training_flags(self, encoded_problem):
        from repro.classifiers.multimodel import MultiModelHDC

        assert BaselineHDC().supports_packed_training()
        assert RetrainingHDC().supports_packed_training()
        assert AdaptHDC().supports_packed_training()
        assert EnhancedRetrainingHDC().supports_packed_training()
        assert not MultiModelHDC().supports_packed_training()
