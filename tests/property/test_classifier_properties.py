"""Property-based tests for classifier invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.retraining import RetrainingHDC
from repro.eval.metrics import aggregate_mean_std, confusion_matrix
from repro.hdc.hypervector import random_hypervectors


def make_random_task(num_samples, dimension, num_classes, seed, flip_probability=0.2):
    """Prototype-plus-noise bipolar classification task."""
    rng = np.random.default_rng(seed)
    prototypes = random_hypervectors(num_classes, dimension, seed=rng)
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    samples = prototypes[labels].copy()
    flips = rng.random(samples.shape) < flip_probability
    samples[flips] *= -1
    return samples.astype(np.int8), labels.astype(np.int64)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=64, max_value=512),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_baseline_predictions_are_valid_labels(num_classes, dimension, seed):
    samples, labels = make_random_task(10 * num_classes, dimension, num_classes, seed)
    model = BaselineHDC(seed=seed).fit(samples, labels)
    predictions = model.predict(samples)
    assert predictions.shape == labels.shape
    assert predictions.min() >= 0
    assert predictions.max() < num_classes


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_baseline_learns_prototype_task_well(num_classes, seed):
    # With low noise and enough dimensions the centroid classifier must
    # recover the prototypes and classify the training set almost perfectly.
    samples, labels = make_random_task(
        20 * num_classes, 1024, num_classes, seed, flip_probability=0.05
    )
    model = BaselineHDC(seed=seed).fit(samples, labels)
    assert model.score(samples, labels) > 0.95


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_retraining_never_below_chance_on_training_data(seed):
    samples, labels = make_random_task(60, 256, 3, seed, flip_probability=0.3)
    model = RetrainingHDC(iterations=3, seed=seed).fit(samples, labels)
    assert model.score(samples, labels) > 1.0 / 3.0


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_multimodel_storage_accounting(models_per_class, seed):
    samples, labels = make_random_task(40, 128, 2, seed)
    model = MultiModelHDC(models_per_class=models_per_class, iterations=1, seed=seed)
    model.fit(samples, labels)
    assert model.storage_hypervectors == 2 * models_per_class


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=20),
)
def test_mean_std_aggregation_bounds(values):
    summary = aggregate_mean_std(values)
    assert min(values) - 1e-12 <= summary.mean <= max(values) + 1e-12
    assert summary.std >= 0.0
    assert summary.count == len(values)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_confusion_matrix_row_sums_equal_class_counts(num_classes, num_samples, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_samples)
    predictions = rng.integers(0, num_classes, size=num_samples)
    matrix = confusion_matrix(predictions, labels, num_classes=num_classes)
    np.testing.assert_array_equal(
        matrix.sum(axis=1), np.bincount(labels, minlength=num_classes)
    )
    assert matrix.sum() == num_samples
