"""Property-based tests for quantisers, item memories and encoders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hdc.hypervector import hamming_distance
from repro.hdc.itemmemory import LevelItemMemory
from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(4, 40), st.integers(1, 6)),
        elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    ),
    st.integers(min_value=2, max_value=16),
)
def test_uniform_quantizer_levels_in_range_and_monotone(features, num_levels):
    quantizer = UniformQuantizer(num_levels)
    levels = quantizer.fit_transform(features)
    assert levels.min() >= 0
    assert levels.max() <= num_levels - 1
    # Within each feature column, larger values never get a smaller level.
    for column in range(features.shape[1]):
        order = np.argsort(features[:, column], kind="stable")
        assert np.all(np.diff(levels[order, column]) >= 0)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(8, 50), st.integers(1, 4)),
        elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    ),
    st.integers(min_value=2, max_value=8),
)
def test_quantile_quantizer_levels_in_range_and_monotone(features, num_levels):
    quantizer = QuantileQuantizer(num_levels)
    levels = quantizer.fit_transform(features)
    assert levels.min() >= 0
    assert levels.max() <= num_levels - 1
    for column in range(features.shape[1]):
        order = np.argsort(features[:, column], kind="stable")
        assert np.all(np.diff(levels[order, column]) >= 0)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=256, max_value=4096),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_level_memory_distance_monotone_in_level_gap(num_levels, dimension, seed):
    """The level codebook's Hamming distance grows with the level difference."""
    memory = LevelItemMemory(num_levels, dimension, seed=seed)
    distances = [
        hamming_distance(memory[0], memory[level]) for level in range(num_levels)
    ]
    assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))
    assert distances[-1] <= 0.5 + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_record_encoder_output_always_bipolar(num_features, num_samples, seed):
    from repro.hdc.encoders import RecordEncoder

    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 1, size=(num_samples, num_features))
    encoder = RecordEncoder(dimension=256, num_levels=4, seed=seed)
    encoded = encoder.fit_encode(features)
    assert encoded.shape == (num_samples, 256)
    assert set(np.unique(encoded)) <= {-1, 1}


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_record_encoder_identical_samples_identical_codes(seed):
    from repro.hdc.encoders import RecordEncoder

    rng = np.random.default_rng(seed)
    row = rng.uniform(0, 1, size=(1, 8))
    features = np.vstack([row, row, rng.uniform(0, 1, size=(3, 8))])
    encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=seed)
    encoded = encoder.fit_encode(features)
    np.testing.assert_array_equal(encoded[0], encoded[1])
