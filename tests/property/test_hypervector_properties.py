"""Property-based tests (hypothesis) for the hypervector algebra.

These check the algebraic identities the whole HDC/BNN equivalence rests on,
over randomly drawn hypervectors of varying dimensions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hdc.hypervector import (
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    permute,
    sign_with_ties,
)

DIMENSIONS = st.integers(min_value=4, max_value=512)


def bipolar_arrays(rows=None):
    """Strategy producing bipolar arrays: (rows, D) if rows given, else (D,)."""

    def build(dimension):
        shape = (rows, dimension) if rows is not None else (dimension,)
        return arrays(
            dtype=np.int8,
            shape=shape,
            elements=st.sampled_from([-1, 1]),
        )

    return DIMENSIONS.flatmap(build)


@st.composite
def bipolar_pair(draw):
    """Two bipolar vectors of the same (random) dimension."""
    dimension = draw(DIMENSIONS)
    element = st.sampled_from([-1, 1])
    a = draw(arrays(np.int8, (dimension,), elements=element))
    b = draw(arrays(np.int8, (dimension,), elements=element))
    return a, b


@settings(max_examples=50, deadline=None)
@given(bipolar_pair())
def test_hamming_is_symmetric_and_bounded(pair):
    a, b = pair
    forward = hamming_distance(a, b)
    backward = hamming_distance(b, a)
    assert forward == backward
    assert 0.0 <= forward <= 1.0


@settings(max_examples=50, deadline=None)
@given(bipolar_arrays())
def test_hamming_identity(vector):
    assert hamming_distance(vector, vector) == 0.0
    assert hamming_distance(vector, -vector) == 1.0


@settings(max_examples=50, deadline=None)
@given(bipolar_pair())
def test_cosine_equals_one_minus_two_hamming(pair):
    a, b = pair
    np.testing.assert_allclose(
        cosine_similarity(a, b), 1.0 - 2.0 * hamming_distance(a, b), atol=1e-12
    )


@settings(max_examples=50, deadline=None)
@given(bipolar_pair())
def test_dot_equals_dimension_times_cosine(pair):
    a, b = pair
    np.testing.assert_allclose(
        dot_similarity(a, b), a.shape[0] * cosine_similarity(a, b), atol=1e-9
    )


@settings(max_examples=50, deadline=None)
@given(bipolar_pair())
def test_binding_preserves_distance(pair):
    # Binding both operands with the same vector is an isometry for Hamming.
    a, b = pair
    key = np.where(np.arange(a.shape[0]) % 2 == 0, 1, -1).astype(np.int8)
    assert hamming_distance(bind(a, key), bind(b, key)) == hamming_distance(a, b)


@settings(max_examples=50, deadline=None)
@given(bipolar_pair())
def test_bind_self_inverse(pair):
    a, b = pair
    np.testing.assert_array_equal(bind(bind(a, b), b), a)


@settings(max_examples=50, deadline=None)
@given(bipolar_pair(), st.integers(min_value=-64, max_value=64))
def test_permutation_preserves_distance(pair, shift):
    a, b = pair
    assert hamming_distance(permute(a, shift), permute(b, shift)) == hamming_distance(a, b)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=9).filter(lambda n: n % 2 == 1),
    st.integers(min_value=4, max_value=128),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_of_odd_count_has_no_ties(count, dimension, seed):
    rng = np.random.default_rng(seed)
    members = (2 * rng.integers(0, 2, size=(count, dimension)) - 1).astype(np.int8)
    bundled_a = bundle(members, tie_break="positive")
    bundled_b = bundle(members, rng=np.random.default_rng(0), tie_break="random")
    # An odd number of bipolar vectors can never sum to zero, so the tie-break
    # policy must not matter.
    np.testing.assert_array_equal(bundled_a, bundled_b)


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 8), st.integers(1, 64)),
        elements=st.floats(-10, 10, allow_nan=False),
    )
)
def test_sign_with_ties_only_produces_bipolar(values):
    result = sign_with_ties(values, rng=np.random.default_rng(0))
    assert set(np.unique(result)) <= {-1, 1}
    # Non-zero entries must match the plain sign.
    nonzero = values != 0
    np.testing.assert_array_equal(result[nonzero], np.sign(values[nonzero]).astype(np.int8))
