"""Property-based tests for the NumPy NN substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.layers import BinaryLinear, Dropout
from repro.nn.losses import cross_entropy_from_logits, one_hot, softmax
from repro.nn.module import Parameter
from repro.nn.optim import Adam, clip_gradient_norm

FINITE_FLOATS = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 8)), elements=FINITE_FLOATS))
def test_softmax_rows_are_distributions(logits):
    probabilities = softmax(logits)
    assert np.all(probabilities >= 0.0)
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 6)), elements=FINITE_FLOATS),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_cross_entropy_gradient_rows_sum_to_zero(logits, seed):
    labels = np.random.default_rng(seed).integers(0, logits.shape[1], size=logits.shape[0])
    loss, grad = cross_entropy_from_logits(logits, labels)
    assert np.isfinite(loss)
    assert loss >= 0.0
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 20), st.integers(2, 10))
def test_one_hot_rows_have_single_one(num_samples, num_classes):
    labels = np.arange(num_samples) % num_classes
    encoded = one_hot(labels, num_classes)
    np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(num_samples))
    np.testing.assert_array_equal(np.argmax(encoded, axis=1), labels)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=32),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_binary_linear_weights_always_bipolar(in_features, out_features, seed):
    layer = BinaryLinear(in_features, out_features, seed=seed)
    assert set(np.unique(layer.binary_weight)) <= {-1.0, 1.0}
    # After an arbitrary latent update the binarisation is still bipolar.
    layer.weight.value += np.random.default_rng(seed).normal(size=layer.weight.shape)
    assert set(np.unique(layer.binary_weight)) <= {-1.0, 1.0}


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_dropout_eval_identity_and_train_masking(rate, seed):
    layer = Dropout(rate, seed=seed)
    inputs = np.random.default_rng(seed).normal(size=(8, 32))
    layer.eval()
    np.testing.assert_array_equal(layer.forward(inputs), inputs)
    layer.train()
    outputs = layer.forward(inputs)
    # Every surviving entry is the input scaled by 1/(1-rate).
    survivors = outputs != 0.0
    if rate > 0.0:
        np.testing.assert_allclose(
            outputs[survivors], inputs[survivors] / (1.0 - rate), atol=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 64), elements=FINITE_FLOATS),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_clip_gradient_norm_never_exceeds_max(gradient, max_norm):
    parameter = Parameter(np.zeros(gradient.shape))
    parameter.add_grad(gradient)
    clip_gradient_norm([parameter], max_norm=max_norm)
    assert np.linalg.norm(parameter.grad) <= max_norm + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_adam_step_bounded_by_learning_rate_scale(seed):
    # Each Adam update coordinate is bounded by ~lr / (1 - beta1) in magnitude;
    # with default betas the first-step bound is simply the learning rate.
    rng = np.random.default_rng(seed)
    parameter = Parameter(rng.normal(size=16))
    before = parameter.value.copy()
    optimizer = Adam([parameter], learning_rate=0.01)
    parameter.add_grad(rng.normal(size=16) * 100.0)
    optimizer.step()
    assert np.max(np.abs(parameter.value - before)) <= 0.011
