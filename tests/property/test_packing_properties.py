"""Property-based tests for the bit-packed hypervector backend."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.hypervector import hamming_distance, random_hypervectors
from repro.kernels import pack_bipolar, unpack_bipolar


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_pack_unpack_roundtrip(rows, dimension, seed):
    vectors = random_hypervectors(rows, dimension, seed=seed)
    np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(vectors)), vectors)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_packed_hamming_matches_dense(rows_a, rows_b, dimension, seed):
    a = random_hypervectors(rows_a, dimension, seed=seed)
    b = random_hypervectors(rows_b, dimension, seed=seed + 1)
    dense = np.atleast_2d(hamming_distance(a, b))
    packed = pack_bipolar(a).hamming_distance(pack_bipolar(b))
    np.testing.assert_allclose(packed, dense, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=2**31 - 1))
def test_storage_is_ceil_d_over_64_words(dimension, seed):
    packed = pack_bipolar(random_hypervectors(1, dimension, seed=seed))
    assert packed.words.shape[1] == -(-dimension // 64)
    assert packed.storage_bytes == packed.words.shape[1] * 8
