"""Property-based tests for the packed training kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.hypervector import random_hypervectors
from repro.kernels import pack_bipolar
from repro.kernels.packed import flip_score_delta, pack_flip_mask, popcount
from repro.kernels.train import (
    EnsembleScoreboard,
    PackedTrainingSet,
    bundle_packed,
    flip_fraction_packed,
    score_epoch,
    unpack_bit_rows,
)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_matches_dense_accumulation(rows, dimension, num_classes, seed):
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.random.default_rng(seed + 1).integers(0, num_classes, size=rows)
    expected = np.zeros((num_classes, dimension), dtype=np.int64)
    np.add.at(expected, labels, vectors.astype(np.int64))
    result = bundle_packed(pack_bipolar(vectors), labels, num_classes)
    np.testing.assert_array_equal(result, expected)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_single_class_equals_row_sum(rows, dimension, seed):
    """With one class the bundle is exactly the column sum of all rows."""
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.zeros(rows, dtype=np.int64)
    result = bundle_packed(pack_bipolar(vectors), labels, 1)
    np.testing.assert_array_equal(result[0], vectors.astype(np.int64).sum(axis=0))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_entries_bounded_by_class_size(rows, dimension, num_classes, seed):
    """|accumulator| <= class size, with matching parity (sums of ±1)."""
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.random.default_rng(seed + 1).integers(0, num_classes, size=rows)
    result = bundle_packed(pack_bipolar(vectors), labels, num_classes)
    class_sizes = np.bincount(labels, minlength=num_classes)
    assert np.all(np.abs(result) <= class_sizes[:, None])
    # A sum of k values in {+1, -1} has the same parity as k.
    assert np.all((result - class_sizes[:, None]) % 2 == 0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_score_epoch_consistent_with_hamming_ordering(rows, classes, dimension, seed):
    samples = random_hypervectors(rows, dimension, seed=seed)
    class_hvs = random_hypervectors(classes, dimension, seed=seed + 1)
    packed_samples = pack_bipolar(samples)
    packed_classes = pack_bipolar(class_hvs)
    scores, predicted = score_epoch(packed_samples, packed_classes)
    distances = packed_samples.bit_differences(packed_classes)
    # dot = D - 2 * diff: argmax score == argmin raw bit differences.
    np.testing.assert_array_equal(scores, dimension - 2 * distances)
    np.testing.assert_array_equal(predicted, np.argmin(distances, axis=1))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_flip_fraction_is_a_normalised_hamming_mean(rows, dimension, seed):
    a = random_hypervectors(rows, dimension, seed=seed)
    b = random_hypervectors(rows, dimension, seed=seed + 1)
    fraction = flip_fraction_packed(pack_bipolar(a), pack_bipolar(b))
    assert 0.0 <= fraction <= 1.0
    assert fraction == float(np.mean(a != b))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_training_set_roundtrip(rows, dimension, seed):
    vectors = random_hypervectors(rows, dimension, seed=seed)
    train_set = PackedTrainingSet.from_dense(vectors)
    np.testing.assert_array_equal(train_set.samples, vectors)
    np.testing.assert_array_equal(
        train_set.packed.words, pack_bipolar(vectors).words
    )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_pack_flip_mask_sets_exactly_the_chosen_bits(dimension, max_flips, seed):
    rng = np.random.default_rng(seed)
    count = min(max_flips, dimension)
    positions = rng.choice(dimension, size=count, replace=False)
    mask = pack_flip_mask(positions, dimension)
    assert int(popcount(mask).sum()) == count
    bits = unpack_bit_rows(mask[None, :], dimension)[0]
    np.testing.assert_array_equal(np.flatnonzero(bits), np.sort(positions))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_flip_score_delta_equals_dense_dot_difference(
    rows, dimension, max_flips, seed
):
    """delta == (new model) · samples − (old model) · samples, exactly."""
    rng = np.random.default_rng(seed)
    samples = random_hypervectors(rows, dimension, seed=seed)
    old_model = random_hypervectors(1, dimension, seed=seed + 1)[0]
    count = min(max_flips, dimension)
    positions = rng.choice(dimension, size=count, replace=False)
    new_model = old_model.copy()
    new_model[positions] = -new_model[positions]

    mask = pack_flip_mask(positions, dimension)
    delta = flip_score_delta(
        pack_bipolar(samples).words, pack_bipolar(new_model[None, :]).words[0], mask
    )
    expected = samples.astype(np.int64) @ new_model.astype(np.int64) - (
        samples.astype(np.int64) @ old_model.astype(np.int64)
    )
    np.testing.assert_array_equal(delta, expected)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_scoreboard_invariant_under_random_flips(rows, dimension, models, seed):
    """scores == samples · bank after any sequence of flip_bits calls."""
    rng = np.random.default_rng(seed)
    samples = random_hypervectors(rows, dimension, seed=seed)
    bank = random_hypervectors(models, dimension, seed=seed + 1)
    board = EnsembleScoreboard(
        pack_bipolar(samples), pack_bipolar(bank).words, dimension
    )
    for _ in range(5):
        model_index = int(rng.integers(0, models))
        count = int(rng.integers(1, dimension + 1))
        positions = rng.choice(dimension, size=count, replace=False)
        bank[model_index, positions] = -bank[model_index, positions]
        board.flip_bits(model_index, positions)
        np.testing.assert_array_equal(
            board.scores, samples.astype(np.int64) @ bank.astype(np.int64).T
        )
    # refresh() recomputes the same matrix from the mutated words.
    maintained = board.scores.copy()
    board.refresh()
    np.testing.assert_array_equal(board.scores, maintained)
