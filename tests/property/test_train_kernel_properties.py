"""Property-based tests for the packed training kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.hypervector import random_hypervectors
from repro.kernels import pack_bipolar
from repro.kernels.train import (
    PackedTrainingSet,
    bundle_packed,
    flip_fraction_packed,
    score_epoch,
)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_matches_dense_accumulation(rows, dimension, num_classes, seed):
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.random.default_rng(seed + 1).integers(0, num_classes, size=rows)
    expected = np.zeros((num_classes, dimension), dtype=np.int64)
    np.add.at(expected, labels, vectors.astype(np.int64))
    result = bundle_packed(pack_bipolar(vectors), labels, num_classes)
    np.testing.assert_array_equal(result, expected)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_single_class_equals_row_sum(rows, dimension, seed):
    """With one class the bundle is exactly the column sum of all rows."""
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.zeros(rows, dtype=np.int64)
    result = bundle_packed(pack_bipolar(vectors), labels, 1)
    np.testing.assert_array_equal(result[0], vectors.astype(np.int64).sum(axis=0))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_bundle_packed_entries_bounded_by_class_size(rows, dimension, num_classes, seed):
    """|accumulator| <= class size, with matching parity (sums of ±1)."""
    vectors = random_hypervectors(rows, dimension, seed=seed)
    labels = np.random.default_rng(seed + 1).integers(0, num_classes, size=rows)
    result = bundle_packed(pack_bipolar(vectors), labels, num_classes)
    class_sizes = np.bincount(labels, minlength=num_classes)
    assert np.all(np.abs(result) <= class_sizes[:, None])
    # A sum of k values in {+1, -1} has the same parity as k.
    assert np.all((result - class_sizes[:, None]) % 2 == 0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_score_epoch_consistent_with_hamming_ordering(rows, classes, dimension, seed):
    samples = random_hypervectors(rows, dimension, seed=seed)
    class_hvs = random_hypervectors(classes, dimension, seed=seed + 1)
    packed_samples = pack_bipolar(samples)
    packed_classes = pack_bipolar(class_hvs)
    scores, predicted = score_epoch(packed_samples, packed_classes)
    distances = packed_samples.bit_differences(packed_classes)
    # dot = D - 2 * diff: argmax score == argmin raw bit differences.
    np.testing.assert_array_equal(scores, dimension - 2 * distances)
    np.testing.assert_array_equal(predicted, np.argmin(distances, axis=1))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_flip_fraction_is_a_normalised_hamming_mean(rows, dimension, seed):
    a = random_hypervectors(rows, dimension, seed=seed)
    b = random_hypervectors(rows, dimension, seed=seed + 1)
    fraction = flip_fraction_packed(pack_bipolar(a), pack_bipolar(b))
    assert 0.0 <= fraction <= 1.0
    assert fraction == float(np.mean(a != b))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_training_set_roundtrip(rows, dimension, seed):
    vectors = random_hypervectors(rows, dimension, seed=seed)
    train_set = PackedTrainingSet.from_dense(vectors)
    np.testing.assert_array_equal(train_set.samples, vectors)
    np.testing.assert_array_equal(
        train_set.packed.words, pack_bipolar(vectors).words
    )
