"""Unit tests for repro.classifiers.adapthd."""

import numpy as np
import pytest

from repro.classifiers.adapthd import AdaptHDC


class TestAdaptHDC:
    def test_fit_and_score_data_mode(self, encoded_problem):
        model = AdaptHDC(iterations=5, mode="data", seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_fit_and_score_iteration_mode(self, encoded_problem):
        model = AdaptHDC(iterations=5, mode="iteration", seed=1)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AdaptHDC(mode="hybrid")

    def test_data_mode_update_scales_with_gap(self):
        dimension = 100
        sample = np.ones(dimension)
        model = AdaptHDC(max_learning_rate=1.0, mode="data", seed=2)

        small_gap_state = np.zeros((2, dimension))
        # scores: wrong class barely ahead of the true class
        model._update(small_gap_state, sample, 0, 1, alpha=1.0, scores=np.array([10.0, 12.0]))
        small_delta = np.abs(small_gap_state[0]).sum()

        large_gap_state = np.zeros((2, dimension))
        # scores: wrong class far ahead of the true class
        model._update(large_gap_state, sample, 0, 1, alpha=1.0, scores=np.array([-80.0, 80.0]))
        large_delta = np.abs(large_gap_state[0]).sum()

        assert large_delta > small_delta

    def test_iteration_mode_rate_follows_error(self):
        from repro.classifiers.retraining import RetrainingHistory

        model = AdaptHDC(max_learning_rate=1.0, mode="iteration", seed=3)
        model.history_ = RetrainingHistory(train_accuracy=[0.9])
        state = np.zeros((2, 10))
        model._update(state, np.ones(10), 0, 1, alpha=1.0, scores=np.array([0.0, 1.0]))
        # With 90% training accuracy the adaptive rate is 0.1, so the update
        # magnitude per coordinate is 0.1 rather than the full max rate.
        assert np.allclose(np.abs(state[0]), 0.1)

    def test_history_recorded(self, encoded_problem):
        model = AdaptHDC(iterations=4, epsilon=0.0, seed=4)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.history_.iterations == 4
