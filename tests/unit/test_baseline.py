"""Unit tests for repro.classifiers.baseline."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.hdc.hypervector import random_hypervectors


class TestBaselineHDC:
    def test_fit_produces_bipolar_class_hypervectors(self, encoded_problem):
        model = BaselineHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.class_hypervectors_.shape == (
            encoded_problem["num_classes"],
            encoded_problem["dimension"],
        )
        assert set(np.unique(model.class_hypervectors_)) <= {-1, 1}

    def test_accuracy_beats_chance(self, encoded_problem):
        model = BaselineHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5  # chance for 4 classes is 0.25

    def test_class_hypervector_is_majority_of_members(self):
        # Two classes, constructed so the majority is unambiguous.
        class0 = np.tile(np.array([[1, 1, -1, -1]], dtype=np.int8), (3, 1))
        class1 = np.tile(np.array([[-1, -1, 1, 1]], dtype=np.int8), (3, 1))
        hypervectors = np.vstack([class0, class1])
        labels = np.array([0, 0, 0, 1, 1, 1])
        model = BaselineHDC(tie_break="positive", seed=0).fit(hypervectors, labels)
        np.testing.assert_array_equal(model.class_hypervectors_[0], [1, 1, -1, -1])
        np.testing.assert_array_equal(model.class_hypervectors_[1], [-1, -1, 1, 1])

    def test_accumulators_kept(self):
        hypervectors = random_hypervectors(10, 64, seed=0)
        labels = np.array([0, 1] * 5)
        model = BaselineHDC(seed=1).fit(hypervectors, labels)
        assert model.accumulators_.shape == (2, 64)
        assert model.accumulators_.dtype == np.int64

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            BaselineHDC().predict(random_hypervectors(1, 16, seed=0))

    def test_single_class_rejected(self):
        hypervectors = random_hypervectors(5, 32, seed=2)
        with pytest.raises(ValueError):
            BaselineHDC().fit(hypervectors, np.zeros(5, dtype=int))

    def test_dimension_mismatch_at_predict(self, encoded_problem):
        model = BaselineHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        with pytest.raises(ValueError):
            model.predict(random_hypervectors(2, 77, seed=3))

    def test_decision_scores_consistent_with_hamming(self, encoded_problem):
        model = BaselineHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        queries = encoded_problem["test_hypervectors"][:10]
        by_scores = np.argmax(model.decision_scores(queries), axis=1)
        by_hamming = np.argmin(model.hamming_distances(queries), axis=1)
        np.testing.assert_array_equal(by_scores, by_hamming)

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            BaselineHDC(tie_break="sometimes")

    def test_dimension_property(self, encoded_problem):
        model = BaselineHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.dimension_ == encoded_problem["dimension"]
