"""Unit tests for repro.core.bnn_model."""

import numpy as np
import pytest

from repro.core.bnn_model import BNNTrainer, SingleLayerBNN, TrainingHistory
from repro.core.configs import LeHDCConfig
from repro.hdc.hypervector import random_hypervectors


def make_toy_task(num_samples=120, dimension=256, num_classes=3, seed=0):
    """Linearly separable bipolar task: class prototypes plus bit noise."""
    rng = np.random.default_rng(seed)
    prototypes = random_hypervectors(num_classes, dimension, seed=rng)
    labels = rng.integers(0, num_classes, size=num_samples)
    samples = prototypes[labels].astype(np.int8).copy()
    flip_mask = rng.random((num_samples, dimension)) < 0.15
    samples[flip_mask] *= -1
    return samples, labels.astype(np.int64)


class TestSingleLayerBNN:
    def test_forward_shape(self):
        model = SingleLayerBNN(dimension=128, num_classes=4, dropout_rate=0.0, seed=0)
        outputs = model.forward(np.ones((5, 128)))
        assert outputs.shape == (5, 4)

    def test_class_hypervectors_shape_and_values(self):
        model = SingleLayerBNN(dimension=64, num_classes=3, seed=1)
        hypervectors = model.class_hypervectors
        assert hypervectors.shape == (3, 64)
        assert set(np.unique(hypervectors)) <= {-1, 1}

    def test_latent_hypervectors_match_transpose(self):
        model = SingleLayerBNN(dimension=32, num_classes=2, seed=2)
        np.testing.assert_array_equal(
            model.latent_class_hypervectors, model.linear.weight.value.T
        )

    def test_eval_disables_dropout(self):
        model = SingleLayerBNN(dimension=64, num_classes=2, dropout_rate=0.9, seed=3)
        model.eval()
        inputs = np.ones((1, 64))
        first = model.forward(inputs)
        second = model.forward(inputs)
        np.testing.assert_array_equal(first, second)


class TestBNNTrainer:
    def test_training_reduces_loss(self):
        samples, labels = make_toy_task(seed=4)
        config = LeHDCConfig(
            epochs=15, batch_size=32, dropout_rate=0.0, weight_decay=0.0, learning_rate=0.01
        )
        model = SingleLayerBNN(256, 3, dropout_rate=0.0, seed=4)
        trainer = BNNTrainer(model, config, seed=4)
        history = trainer.train(samples, labels)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.train_accuracy[-1] > 0.9

    def test_history_lengths(self):
        samples, labels = make_toy_task(num_samples=60, dimension=128, seed=5)
        config = LeHDCConfig(epochs=4, batch_size=16, dropout_rate=0.0)
        model = SingleLayerBNN(128, 3, dropout_rate=0.0, seed=5)
        trainer = BNNTrainer(model, config, seed=5)
        history = trainer.train(samples, labels, validation_hypervectors=samples, validation_labels=labels)
        assert history.epochs == 4
        assert len(history.validation_accuracy) == 4
        assert len(history.learning_rate) == 4

    def test_epoch_override(self):
        samples, labels = make_toy_task(num_samples=40, dimension=64, seed=6)
        config = LeHDCConfig(epochs=100, batch_size=16, dropout_rate=0.0)
        model = SingleLayerBNN(64, 3, dropout_rate=0.0, seed=6)
        trainer = BNNTrainer(model, config, seed=6)
        history = trainer.train(samples, labels, epochs=2)
        assert history.epochs == 2

    def test_validation_args_must_come_together(self):
        samples, labels = make_toy_task(num_samples=40, dimension=64, seed=7)
        config = LeHDCConfig(epochs=1, batch_size=16)
        trainer = BNNTrainer(SingleLayerBNN(64, 3, seed=7), config, seed=7)
        with pytest.raises(ValueError):
            trainer.train(samples, labels, validation_hypervectors=samples)

    def test_sgd_and_momentum_optimizers_work(self):
        samples, labels = make_toy_task(num_samples=60, dimension=128, seed=8)
        for optimizer in ("sgd", "momentum"):
            config = LeHDCConfig(
                epochs=5,
                batch_size=16,
                dropout_rate=0.0,
                weight_decay=0.0,
                optimizer=optimizer,
                learning_rate=0.05,
            )
            model = SingleLayerBNN(128, 3, dropout_rate=0.0, seed=8)
            history = BNNTrainer(model, config, seed=8).train(samples, labels)
            assert history.epochs == 5

    def test_lr_decay_on_loss_increase(self):
        samples, labels = make_toy_task(num_samples=60, dimension=128, seed=9)
        # A huge learning rate makes the loss oscillate, which must trigger decay.
        config = LeHDCConfig(
            epochs=10, batch_size=16, dropout_rate=0.0, learning_rate=5.0, lr_decay_factor=0.5
        )
        model = SingleLayerBNN(128, 3, dropout_rate=0.0, seed=9)
        trainer = BNNTrainer(model, config, seed=9)
        history = trainer.train(samples, labels)
        assert history.learning_rate[-1] < 5.0

    def test_grad_clip_option(self):
        samples, labels = make_toy_task(num_samples=40, dimension=64, seed=10)
        config = LeHDCConfig(epochs=2, batch_size=16, dropout_rate=0.0, grad_clip_norm=0.5)
        model = SingleLayerBNN(64, 3, dropout_rate=0.0, seed=10)
        history = BNNTrainer(model, config, seed=10).train(samples, labels)
        assert history.epochs == 2

    def test_best_validation_epoch(self):
        history = TrainingHistory(validation_accuracy=[0.1, 0.5, 0.3])
        assert history.best_validation_epoch() == 1
        assert TrainingHistory().best_validation_epoch() is None

    def test_bad_labels_rejected(self):
        samples, labels = make_toy_task(num_samples=40, dimension=64, seed=11)
        config = LeHDCConfig(epochs=1, batch_size=16)
        trainer = BNNTrainer(SingleLayerBNN(64, 2, seed=11), config, seed=11)
        with pytest.raises(ValueError):
            trainer.train(samples, labels)  # labels contain class 2 but model has 2 outputs
