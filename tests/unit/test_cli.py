"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.strategy == "lehdc"
        assert args.profile == "tiny"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--strategy", "svm"])

    def test_bench_train_defaults(self):
        args = build_parser().parse_args(["bench-train"])
        assert args.command == "bench-train"
        assert args.dimension == 4000
        assert args.quick is False
        assert args.json is None

    def test_serve_kernel_backend_choices(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--kernel-backend", "threaded"]
        )
        assert args.kernel_backend == "threaded"
        # Default defers to REPRO_KERNEL_BACKEND / numpy.
        assert (
            build_parser().parse_args(["serve", "--model", "m.npz"]).kernel_backend
            is None
        )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--model", "m.npz", "--kernel-backend", "cuda"]
            )

    def test_serve_multiprocess_flags(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--workers", "4", "--cache-size", "0"]
        )
        assert args.workers == 4
        assert args.cache_size == 0
        assert args.scheduler_threads == 1
        multiproc = build_parser().parse_args(
            ["serve", "--model", "m.npz", "--kernel-backend", "multiprocess"]
        )
        assert multiproc.kernel_backend == "multiprocess"

    def test_loadgen_defaults_and_target_exclusivity(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.mode == "closed"
        assert args.url is None and args.model is None
        assert args.quick is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--url", "http://x:1", "--model", "m.npz"]
            )


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        output = capsys.readouterr().out
        assert "mnist" in output
        assert "pamap" in output

    def test_train_baseline_quick(self, capsys):
        code = main(
            [
                "train",
                "--dataset",
                "pamap",
                "--strategy",
                "baseline",
                "--dimension",
                "512",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "test accuracy" in output

    def test_train_save_and_predict(self, tmp_path, capsys):
        model_path = tmp_path / "cli_model.npz"
        assert (
            main(
                [
                    "train",
                    "--dataset",
                    "pamap",
                    "--strategy",
                    "baseline",
                    "--dimension",
                    "512",
                    "--save",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists()
        assert (
            main(
                [
                    "predict",
                    "--model",
                    str(model_path),
                    "--dataset",
                    "pamap",
                    "--profile",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Test accuracy" in output

    def test_loadgen_quick_writes_validated_report(self, tmp_path, capsys):
        report_path = tmp_path / "soak" / "report.json"
        code = main(
            [
                "loadgen",
                "--quick",
                "--dataset",
                "pamap",
                "--dimension",
                "256",
                "--requests",
                "30",
                "--warmup",
                "4",
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "throughput" in output
        assert "quick-mode report validated" in output
        assert report_path.exists()

    def test_compare_quick(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "pamap",
                "--dimension",
                "512",
                "--epochs",
                "5",
                "--iterations",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "lehdc" in output
        assert "baseline" in output

    def test_sweep_quick(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "pamap",
                "--dimensions",
                "256",
                "512",
                "--epochs",
                "5",
                "--iterations",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "256" in output and "512" in output

    def test_bench_train_quick_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "bench_train.json"
        code = main(["bench-train", "--quick", "--json", str(json_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "retraining" in output
        assert "bit-identical" in output
        import json

        results = json.loads(json_path.read_text())
        assert results["config"]["quick"] is True
        assert results["retraining"]["bit_identical"] is True


class TestTenantFlags:
    def test_fleet_flag_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.models == 1
        assert args.zipf_s == 1.1
        assert args.max_resident_banks is None
        assert args.retries is None
        assert args.tenant_rps is None
        assert args.tenant_quotas is None

    def test_serve_tenant_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve", "--model", "m.npz",
                "--max-resident-banks", "4",
                "--tenant-rps", "50", "--tenant-burst", "100",
                "--tenant-max-concurrent", "8",
            ]
        )
        assert args.max_resident_banks == 4
        assert args.tenant_rps == 50.0
        assert args.tenant_burst == 100.0
        assert args.tenant_max_concurrent == 8

    def test_build_tenant_quotas_from_flags_and_file(self, tmp_path):
        import json

        from repro.cli import _build_tenant_quotas

        assert _build_tenant_quotas(build_parser().parse_args(["loadgen"])) is None
        flags_only = _build_tenant_quotas(
            build_parser().parse_args(["loadgen", "--tenant-rps", "5"])
        )
        assert flags_only.default_rps == 5.0
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({"defaults": {"rps": 9, "max_concurrent": 3}}))
        from_file = _build_tenant_quotas(
            build_parser().parse_args(
                ["loadgen", "--tenant-quotas", str(path)]
            )
        )
        # File defaults survive when the flags are unset...
        assert from_file.default_rps == 9.0
        assert from_file.default_max_concurrent == 3
        overridden = _build_tenant_quotas(
            build_parser().parse_args(
                ["loadgen", "--tenant-quotas", str(path), "--tenant-rps", "2"]
            )
        )
        # ...and explicit flags beat the file.
        assert overridden.default_rps == 2.0
        assert overridden.default_max_concurrent == 3

    def test_loadgen_fleet_validation(self, capsys):
        from repro.cli import main

        assert main(["loadgen", "--models", "0"]) == 1
        assert "models" in capsys.readouterr().err
        assert main(["loadgen", "--models", "4", "--url", "http://x:1"]) == 1
        assert main(["loadgen", "--max-resident-banks", "2"]) == 1
