"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.strategy == "lehdc"
        assert args.profile == "tiny"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--strategy", "svm"])


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        output = capsys.readouterr().out
        assert "mnist" in output
        assert "pamap" in output

    def test_train_baseline_quick(self, capsys):
        code = main(
            [
                "train",
                "--dataset",
                "pamap",
                "--strategy",
                "baseline",
                "--dimension",
                "512",
                "--profile",
                "tiny",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "test accuracy" in output

    def test_train_save_and_predict(self, tmp_path, capsys):
        model_path = tmp_path / "cli_model.npz"
        assert (
            main(
                [
                    "train",
                    "--dataset",
                    "pamap",
                    "--strategy",
                    "baseline",
                    "--dimension",
                    "512",
                    "--save",
                    str(model_path),
                ]
            )
            == 0
        )
        assert model_path.exists()
        assert (
            main(
                [
                    "predict",
                    "--model",
                    str(model_path),
                    "--dataset",
                    "pamap",
                    "--profile",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Test accuracy" in output

    def test_compare_quick(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "pamap",
                "--dimension",
                "512",
                "--epochs",
                "5",
                "--iterations",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "lehdc" in output
        assert "baseline" in output

    def test_sweep_quick(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "pamap",
                "--dimensions",
                "256",
                "512",
                "--epochs",
                "5",
                "--iterations",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "256" in output and "512" in output
