"""Unit tests for ClusterDispatcher: parity, crash recovery, cleanup, faults."""

from __future__ import annotations

import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster import (
    ClusterDispatcher,
    DeadlineExceededError,
    SharedModelStore,
    WorkerCrashedError,
)
from repro.faults import FaultPlan, FaultRule
from repro.hdc.encoders import RecordEncoder
from repro.serve.engine import PackedInferenceEngine


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


@pytest.fixture(scope="module")
def served(small_problem):
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=5)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=5))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    engine = PackedInferenceEngine(pipeline, name="disp")
    return engine, small_problem["test_features"]


@pytest.fixture()
def dispatcher(served):
    engine, _ = served
    with ClusterDispatcher(engine, num_workers=2) as dispatcher:
        yield dispatcher


class TestDispatch:
    def test_rejects_dense_engines(self, small_problem):
        encoder = RecordEncoder(dimension=128, num_levels=4, seed=1)
        pipeline = HDCPipeline(encoder, BaselineHDC(seed=1))
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        engine = PackedInferenceEngine(pipeline, name="dense", mode="dense")
        with pytest.raises(ValueError, match="packed"):
            ClusterDispatcher(engine, num_workers=1)

    def test_rejects_bad_worker_count(self, served):
        engine, _ = served
        with pytest.raises(ValueError, match="num_workers"):
            ClusterDispatcher(engine, num_workers=0)

    def test_top_k_and_scores_match_single_process(self, dispatcher, served):
        engine, queries = served
        labels, scores = dispatcher.top_k(queries, k=3)
        expected_labels, expected_scores = engine.top_k(queries, k=3)
        assert np.array_equal(labels, expected_labels)
        assert np.array_equal(scores, expected_scores)
        assert np.array_equal(
            dispatcher.decision_scores(queries), engine.decision_scores(queries)
        )
        assert np.array_equal(dispatcher.predict(queries), engine.predict(queries))

    def test_single_sample_round_robin(self, dispatcher, served):
        engine, queries = served
        for row in queries[:5]:
            labels, _ = dispatcher.top_k(row, k=1)
            assert labels.shape == (1, 1)
            assert labels[0, 0] == engine.predict(row[None, :])[0]

    def test_worker_value_error_propagates(self, dispatcher):
        with pytest.raises(ValueError, match="columns"):
            dispatcher.top_k(np.zeros((4, 3)), k=1)
        # The pool survives a request-level error.
        assert dispatcher.ping()

    def test_ping_reports_distinct_pids(self, dispatcher):
        pids = dispatcher.ping()
        assert len(pids) == 2
        assert len(set(pids)) == 2


class TestCrashRecovery:
    def test_mid_batch_crash_is_masked_by_shard_retry(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2) as dispatcher:
            dispatcher.poison_worker(0)
            # The poisoned worker dies mid-batch; the dispatcher retires the
            # slot, respawns it, and retries the shard once — so the request
            # itself succeeds, bit-identical, with the crash visible only in
            # the counters.
            labels, _ = dispatcher.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.respawns == 1
            assert dispatcher.shard_retries == 1

    def test_dead_worker_found_at_send_is_respawned_transparently(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2) as dispatcher:
            dispatcher._workers[0].process.kill()
            dispatcher._workers[0].process.join(timeout=5.0)
            labels, _ = dispatcher.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.respawns == 1


class TestCleanup:
    def test_close_stops_workers_and_unlinks_segment(self, served):
        engine, queries = served
        dispatcher = ClusterDispatcher(engine, num_workers=2)
        segment = dispatcher._spec.bank_handle.segment
        processes = [worker.process for worker in dispatcher._workers]
        dispatcher.top_k(queries[:4], k=1)
        dispatcher.close()
        assert not _segment_exists(segment)
        for process in processes:
            assert not process.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            dispatcher.top_k(queries[:4], k=1)
        dispatcher.close()  # idempotent

    def test_shared_store_refcounting_across_dispatchers(self, served):
        engine, queries = served
        with SharedModelStore() as store:
            first = ClusterDispatcher(engine, num_workers=1, store=store, name="m@v1")
            second = ClusterDispatcher(engine, num_workers=1, store=store, name="m@v1")
            segment = first._spec.bank_handle.segment
            assert second._spec.bank_handle.segment == segment
            first.close()
            assert _segment_exists(segment)
            labels, _ = second.top_k(queries[:4], k=1)
            assert labels.shape == (4, 1)
            second.close()
            assert not _segment_exists(segment)

    def test_info_shape(self, dispatcher):
        info = dispatcher.info()
        assert info["num_workers"] == 2
        assert info["shared_bank_bytes"] > 0
        assert len(info["worker_pids"]) == 2


def _plan(*rules: FaultRule, hang_seconds: float = 30.0) -> FaultPlan:
    return FaultPlan(rules=tuple(rules), seed=0, hang_seconds=hang_seconds)


class TestFaultInjection:
    """Injected worker faults must be masked by retry-once or surface typed."""

    def test_hang_watchdog_retires_and_masks(self, served):
        engine, queries = served
        # Worker 0 hangs on its second request; the watchdog must detect the
        # still-alive-but-silent worker at request_timeout, terminate it, and
        # retry the shard on the respawned pool — the regression test for the
        # hung-worker leak where `is_alive()` kept returning the same stuck
        # process forever.
        plan = _plan(FaultRule(kind="hang", at=2, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, request_timeout=0.75, fault_plan=plan
        ) as dispatcher:
            dispatcher.top_k(queries[:4], k=1)  # count 1: healthy warm call
            started = time.monotonic()
            labels, _ = dispatcher.top_k(queries, k=1)
            elapsed = time.monotonic() - started
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.hangs == 1
            assert dispatcher.respawns == 1
            assert dispatcher.shard_retries == 1
            assert elapsed < 10.0  # watchdog, not the 30 s hang
            # The respawned pool is healthy (count restarted, at=2 re-arms
            # only on the second request of the new life — warm past it).
            assert dispatcher.ping()

    def test_repeated_hang_surfaces_worker_crashed(self, served):
        engine, queries = served
        # at=1 re-fires on every respawned life: the retry hangs too, so the
        # dispatcher must give up with a typed error instead of looping.
        plan = _plan(FaultRule(kind="hang", at=1, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, request_timeout=0.5, fault_plan=plan
        ) as dispatcher:
            with pytest.raises(WorkerCrashedError):
                dispatcher.top_k(queries, k=1)
            assert dispatcher.hangs == 2

    def test_error_reply_is_retried_without_respawn(self, served):
        engine, queries = served
        plan = _plan(FaultRule(kind="error", at=1, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, fault_plan=plan
        ) as dispatcher:
            labels, _ = dispatcher.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.worker_faults == 1
            assert dispatcher.shard_retries == 1
            assert dispatcher.respawns == 0

    def test_torn_shm_frame_is_retried_and_heals(self, served):
        engine, queries = served
        plan = _plan(FaultRule(kind="torn", at=1, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, transport="shm", fault_plan=plan
        ) as dispatcher:
            labels, _ = dispatcher.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.transport_errors == 1
            assert dispatcher.respawns == 0
            # The ring generation re-syncs on the next request: no residue.
            labels, _ = dispatcher.top_k(queries[:8], k=1)
            assert np.array_equal(labels, engine.top_k(queries[:8], k=1)[0])

    def test_dropped_tcp_socket_is_masked(self, served):
        engine, queries = served
        plan = _plan(FaultRule(kind="drop", at=2, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, transport="tcp", fault_plan=plan
        ) as dispatcher:
            dispatcher.top_k(queries[:4], k=1)
            labels, _ = dispatcher.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert dispatcher.respawns == 1

    def test_expired_deadline_is_rejected_before_dispatch(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2) as dispatcher:
            with pytest.raises(DeadlineExceededError):
                dispatcher.top_k(queries, k=1, deadline=time.monotonic() - 0.01)
            # Request-level rejection; the pool is untouched.
            assert dispatcher.ping()

    def test_deadline_abandons_hung_worker_early(self, served):
        engine, queries = served
        # The deadline (0.5 s) is tighter than the watchdog (5 s): the
        # dispatcher must answer 504-typed at the deadline instead of waiting
        # out the full request_timeout.
        plan = _plan(FaultRule(kind="hang", at=1, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, request_timeout=5.0, fault_plan=plan
        ) as dispatcher:
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                dispatcher.top_k(queries, k=1, deadline=time.monotonic() + 0.5)
            assert time.monotonic() - started < 2.0

    def test_info_reports_fault_plan_and_failure_counters(self, served):
        engine, _ = served
        plan = _plan(FaultRule(kind="error", at=1, workers=(0,)))
        with ClusterDispatcher(
            engine, num_workers=2, fault_plan=plan
        ) as dispatcher:
            info = dispatcher.info()
            assert info["fault_plan"]["rules"][0]["kind"] == "error"
            assert set(info["failures"]) == {
                "hangs",
                "shard_retries",
                "transport_errors",
                "worker_faults",
                "deadline_skips",
                "bank_faults",
            }
            assert info["request_timeout"] == dispatcher.request_timeout


class TestHotSwapRace:
    def test_closed_dispatcher_maps_to_retryable_503(self, served):
        # Simulates the promote race: a request resolved a dispatcher that a
        # concurrent hot-swap closed before the batch ran.  The serving layer
        # must answer 503 (retry lands on the new version), not a 500.
        from repro.serve import ModelRegistry, ServeApp
        from repro.serve.server import RequestError

        engine, queries = served
        registry = ModelRegistry()
        registry.register("m", engine)
        app = ServeApp(registry, num_processes=1, max_wait_ms=0.5, cache_size=0)
        try:
            app.predict({"features": queries[:4].tolist()})  # builds the pool
            app._dispatchers["m"][1].close()
            with pytest.raises(RequestError) as excinfo:
                app.predict({"features": queries[:4].tolist()})
            assert excinfo.value.status == 503
            assert "swapped" in str(excinfo.value)
            # The promote completing (new version registered) restores service.
            registry.register("m", engine)
            response = app.predict({"features": queries[:4].tolist()})
            assert response["labels"] == engine.predict(queries[:4]).tolist()
        finally:
            app.close()
