"""Unit tests for repro.cluster.shared: store, handles, worker rebuild."""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster.errors import BankEvictedError
from repro.cluster.shared import (
    SharedModelStore,
    attach_bank,
    build_worker_engine,
    make_worker_spec,
)
from repro.hdc.encoders import RecordEncoder
from repro.kernels.packed import pack_bipolar
from repro.serve.engine import PackedInferenceEngine


def _random_packed(rng, rows=6, dimension=192):
    dense = rng.choice(np.array([-1, 1], dtype=np.int8), size=(rows, dimension))
    return pack_bipolar(dense)


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


@pytest.fixture()
def fitted_engine(small_problem):
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=5)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=5))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return PackedInferenceEngine(pipeline, name="unit")


class TestSharedModelStore:
    def test_publish_attach_roundtrip(self, rng):
        packed = _random_packed(rng)
        with SharedModelStore() as store:
            handle = store.publish("m@v1", packed)
            assert handle.rows == len(packed)
            assert handle.dimension == packed.dimension
            with attach_bank(handle) as attached:
                assert np.array_equal(attached.packed.words, packed.words)
                assert attached.packed.dimension == packed.dimension

    def test_attached_view_is_zero_copy_and_readonly(self, rng):
        packed = _random_packed(rng)
        with SharedModelStore() as store:
            handle = store.publish("m@v1", packed)
            with attach_bank(handle) as attached:
                # A view over the segment buffer, not a materialised copy.
                assert not attached.packed.words.flags.owndata
                assert not attached.packed.words.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    attached.packed.words[0, 0] = np.uint64(1)

    def test_publish_same_key_is_refcounted(self, rng):
        packed = _random_packed(rng)
        store = SharedModelStore()
        first = store.publish("m@v1", packed)
        second = store.publish("m@v1", packed)
        assert first.segment == second.segment
        assert len(store) == 1
        store.release("m@v1")
        assert _segment_exists(first.segment)  # one reference still held
        store.release("m@v1")
        assert not _segment_exists(first.segment)
        assert len(store) == 0

    def test_release_unknown_key_is_noop(self):
        store = SharedModelStore()
        assert store.release("nope") is False

    def test_double_release_is_idempotent(self, rng):
        store = SharedModelStore()
        handle = store.publish("m@v1", _random_packed(rng))
        assert store.release("m@v1") is True
        assert not _segment_exists(handle.segment)
        # A second (buggy or racing) release must not raise or unlink anew.
        assert store.release("m@v1") is False

    def test_close_unlinks_everything(self, rng):
        store = SharedModelStore()
        handles = [
            store.publish(f"m@v{i}", _random_packed(rng, rows=3)) for i in range(3)
        ]
        assert store.resident_bytes == sum(handle.nbytes for handle in handles)
        store.close()
        for handle in handles:
            assert not _segment_exists(handle.segment)
        with pytest.raises(RuntimeError):
            store.publish("late", _random_packed(rng))

    def test_handle_and_queries(self, rng):
        with SharedModelStore() as store:
            handle = store.publish("a", _random_packed(rng))
            assert store.handle("a") == handle
            assert "a" in store and "b" not in store
            assert store.keys() == ["a"]


class TestWorkerSpec:
    def test_make_worker_spec_requires_packed_mode(self, small_problem):
        encoder = RecordEncoder(dimension=128, num_levels=4, seed=1)
        pipeline = HDCPipeline(encoder, BaselineHDC(seed=1))
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        engine = PackedInferenceEngine(pipeline, name="dense", mode="dense")
        with pytest.raises(ValueError, match="packed"):
            make_worker_spec(engine, bank_handle=None)

    def test_spec_strips_compiled_accumulator(self, fitted_engine, rng):
        with SharedModelStore() as store:
            handle = store.publish("unit@v1", fitted_engine.packed_bank)
            spec = make_worker_spec(fitted_engine, handle)
            assert spec.encoder._accumulator is None
            # The parent engine's encoder keeps its compiled tables.
            assert fitted_engine.encoder._accumulator is not None
            assert spec.ensemble_shape is None
            assert spec.class_hypervectors is fitted_engine.classifier.class_hypervectors_

    def test_build_worker_engine_matches_parent(self, fitted_engine, small_problem):
        queries = small_problem["test_features"][:16]
        with SharedModelStore() as store:
            handle = store.publish("unit@v1", fitted_engine.packed_bank)
            spec = make_worker_spec(fitted_engine, handle)
            attached, worker_engine = build_worker_engine(spec)
            try:
                assert np.array_equal(
                    worker_engine.decision_scores(queries),
                    fitted_engine.decision_scores(queries),
                )
                # The worker engine's resident words ARE the shared segment.
                assert worker_engine.packed_bank is attached.packed
            finally:
                attached.close()

    def test_build_worker_engine_ensemble(self, small_problem):
        # Bit-parity across processes holds for deterministic ("positive")
        # tie-breaks; a "random" encoder would consume per-engine RNG draws.
        encoder = RecordEncoder(
            dimension=512, num_levels=8, tie_break="positive", seed=9
        )
        pipeline = HDCPipeline(
            encoder, MultiModelHDC(models_per_class=3, iterations=1, seed=9)
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        classifier = pipeline.classifier
        engine = PackedInferenceEngine(pipeline, name="ens")
        queries = small_problem["test_features"][:12]
        with SharedModelStore() as store:
            handle = store.publish("ens@v1", engine.packed_bank)
            spec = make_worker_spec(engine, handle)
            assert spec.ensemble_shape == classifier.model_hypervectors_.shape
            attached, worker_engine = build_worker_engine(spec)
            try:
                assert np.array_equal(
                    worker_engine.decision_scores(queries),
                    engine.decision_scores(queries),
                )
            finally:
                attached.close()


class TestAdoptPackedBank:
    def test_shared_rule_shape_mismatch_rejected(self, encoded_problem):
        classifier = BaselineHDC(seed=0)
        classifier.fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        wrong = pack_bipolar(
            np.ones((classifier.num_classes_ + 1, encoded_problem["dimension"]), dtype=np.int8)
        )
        with pytest.raises(ValueError, match="packed bank"):
            classifier.adopt_packed_bank(wrong)

    def test_adopted_bank_is_served_verbatim(self, encoded_problem):
        classifier = BaselineHDC(seed=0)
        classifier.fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        bank = pack_bipolar(classifier.class_hypervectors_)
        classifier.adopt_packed_bank(bank)
        assert classifier.packed_inference_bank() is bank


def _shm_names() -> set:
    from pathlib import Path

    root = Path("/dev/shm")
    return {entry.name for entry in root.iterdir()} if root.is_dir() else set()


class TestShmHygieneUnderChaos:
    """Crashes and teardown races must never leak shared-memory segments."""

    def test_crash_during_drain_leaves_no_segments(self, fitted_engine, small_problem):
        from repro.cluster import ClusterDispatcher
        from repro.faults import FaultPlan, FaultRule

        queries = small_problem["test_features"]
        before = _shm_names()
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", at=2, workers=(0,)),), seed=0
        )
        dispatcher = ClusterDispatcher(
            fitted_engine, num_workers=2, transport="shm", fault_plan=plan
        )
        try:
            dispatcher.top_k(queries[:4], k=1)  # healthy warm call
            dispatcher.top_k(queries[:8], k=1)  # worker 0 crashes, masked
            assert dispatcher.respawns == 1
            # A worker dies again right as the pool shuts down: close() must
            # still unlink the bank, the ring slabs, and the stats slab.
            dispatcher._workers[0].process.kill()
            dispatcher._workers[0].process.join(timeout=5.0)
        finally:
            dispatcher.close()
        assert _shm_names() - before == set()

    def test_unlink_vs_attach_race_is_clean(self, rng):
        before = _shm_names()
        store = SharedModelStore()
        handle = store.publish("m@v1", _random_packed(rng))
        store.close()  # the unlink wins the race
        with pytest.raises(FileNotFoundError):
            attach_bank(handle)
        assert _shm_names() - before == set()

    def test_serve_app_chaos_drain_leaves_no_segments(self, fitted_engine, small_problem):
        from repro.faults import FaultPlan, FaultRule
        from repro.serve import ModelRegistry, ServeApp

        queries = small_problem["test_features"]
        before = _shm_names()
        registry = ModelRegistry()
        registry.register("m", fitted_engine)
        plan = FaultPlan(
            rules=(FaultRule(kind="crash", at=2, workers=(0,)),), seed=0
        )
        app = ServeApp(
            registry,
            num_processes=2,
            transport="shm",
            cache_size=0,
            max_wait_ms=0.5,
            fault_plan=plan,
        )
        try:
            app.predict({"features": queries[:4].tolist()})
            app.predict({"features": queries[:4].tolist()})  # crash masked
        finally:
            app.begin_drain()
            app.drain(grace_seconds=5.0)
        assert _shm_names() - before == set()


class TestFleetPaging:
    """Residency cap, lease/generation protocol, and eviction races."""

    def test_residency_cap_evicts_lru_unleased(self, rng):
        with SharedModelStore(max_resident=2) as store:
            first = store.publish("a@v1", _random_packed(rng))
            store.publish("b@v1", _random_packed(rng))
            store.publish("c@v1", _random_packed(rng))  # evicts "a" (LRU)
            stats = store.stats()
            assert stats["resident_banks"] == 2
            assert stats["evictions"] == 1
            assert stats["peak_resident_banks"] == 2
            assert not _segment_exists(first.segment)
            with pytest.raises(BankEvictedError):
                store.lease("a@v1")

    def test_lease_pins_against_cap_eviction(self, rng):
        with SharedModelStore(max_resident=2, evict_wait_seconds=0.2) as store:
            store.publish("a@v1", _random_packed(rng))
            store.publish("b@v1", _random_packed(rng))
            with store.lease("a@v1"), store.lease("b@v1"):
                # Every resident bank is pinned: a third publish must wait
                # for a lease to drop, then give up — never unlink a leased
                # segment.
                with pytest.raises(RuntimeError, match="cap"):
                    store.publish("c@v1", _random_packed(rng))
            assert store.stats()["resident_banks"] == 2

    def test_evict_defers_until_last_lease_drops(self, rng):
        with SharedModelStore() as store:
            handle = store.publish("a@v1", _random_packed(rng))
            lease = store.lease("a@v1")
            assert store.evict("a@v1") is False  # deferred, not unlinked
            assert _segment_exists(handle.segment)
            with pytest.raises(BankEvictedError):
                store.lease("a@v1")  # draining: no new pins
            lease.release()
            assert not _segment_exists(handle.segment)

    def test_restore_bumps_generation_and_counts(self, rng):
        with SharedModelStore() as store:
            packed = _random_packed(rng)
            handle = store.publish("a@v1", packed)
            store.evict("a@v1")
            restored = store.restore("a@v1", packed)
            assert restored.generation > handle.generation
            assert store.stats()["restores"] == 1
            with attach_bank(restored) as bank:
                np.testing.assert_array_equal(bank.packed.words, packed.words)

    def test_release_while_leased_defers_unlink(self, rng):
        with SharedModelStore() as store:
            handle = store.publish("a@v1", _random_packed(rng))
            lease = store.lease("a@v1")
            assert store.release("a@v1") is False  # deferred on the lease
            assert _segment_exists(handle.segment)
            with attach_bank(handle) as bank:
                assert bank.packed.words.shape == (6, 3)
            lease.release()
            assert not _segment_exists(handle.segment)
            assert len(store) == 0

    def test_parallel_publish_release_is_consistent(self, rng):
        import threading

        before = _shm_names()
        packs = [_random_packed(rng) for _ in range(4)]
        with SharedModelStore(max_resident=2) as store:
            barrier = threading.Barrier(8)
            errors = []

            def churn(index):
                barrier.wait()
                key = f"m{index % 4}@v1"
                try:
                    for _ in range(25):
                        store.publish(key, packs[index % 4])
                        try:
                            lease = store.lease(key)
                        except BankEvictedError:
                            store.restore(key, packs[index % 4])
                        else:
                            lease.release()
                        store.release(key)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [
                threading.Thread(target=churn, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            stats = store.stats()
            assert stats["leases"] == 0
            assert stats["resident_banks"] <= 2
        assert _shm_names() - before == set()
