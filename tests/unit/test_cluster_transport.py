"""Unit tests for the pluggable cluster transports (pipe / shm / tcp).

Covers the transport tier's contracts end to end: bit-identical shard/merge
parity on every transport (including the ensemble max-over-bank merge),
shared-memory slab auto-growth and torn-write detection via generation
counters, the inline-fallback degrade path, `poison_worker` chaos and
kill-mid-batch crashes on the shm path, the TCP framing against its real
localhost listener, request-level error propagation per transport, and the
byte-accounting/affinity surfaces the benchmarks and metrics read.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.cluster import ClusterDispatcher, Transport
from repro.cluster.affinity import available_cpus, build_pin_map
from repro.cluster.transport import (
    ShmParentEndpoint,
    ShmWorkerEndpoint,
    TransportError,
    _Slab,
    make_transport,
)
from repro.hdc.encoders import RecordEncoder
from repro.serve.engine import PackedInferenceEngine

TRANSPORTS = ("pipe", "shm", "tcp")


@pytest.fixture(scope="module")
def served(small_problem):
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=5)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=5))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    engine = PackedInferenceEngine(pipeline, name="transport")
    return engine, small_problem["test_features"]


@pytest.fixture(scope="module")
def ensemble_served(small_problem):
    encoder = RecordEncoder(dimension=192, num_levels=8, tie_break="positive", seed=9)
    pipeline = HDCPipeline(
        encoder, MultiModelHDC(models_per_class=4, iterations=1, seed=9)
    )
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    engine = PackedInferenceEngine(pipeline, name="transport-ens")
    return engine, small_problem["test_features"][:32]


class TestParity:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_top_k_scores_and_predict_match_single_process(self, served, transport):
        engine, queries = served
        expected_labels, expected_scores = engine.top_k(queries, k=3)
        with ClusterDispatcher(engine, num_workers=2, transport=transport) as d:
            labels, scores = d.top_k(queries, k=3)
            assert np.array_equal(labels, expected_labels)
            assert np.array_equal(scores, expected_scores)
            assert np.array_equal(
                d.decision_scores(queries), engine.decision_scores(queries)
            )
            assert np.array_equal(d.predict(queries), engine.predict(queries))

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_ensemble_max_over_bank_merge(self, ensemble_served, transport):
        engine, queries = ensemble_served
        with ClusterDispatcher(engine, num_workers=2, transport=transport) as d:
            assert np.array_equal(
                d.decision_scores(queries), engine.decision_scores(queries)
            )

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_value_error_propagates_and_pool_survives(self, served, transport):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2, transport=transport) as d:
            with pytest.raises(ValueError, match="columns"):
                d.top_k(np.zeros((4, 3)), k=1)
            labels, _ = d.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert d.respawns == 0

    def test_ships_packed_words_not_float_rows(self, served):
        engine, queries = served
        batch = np.ascontiguousarray(queries[:16])
        packed_nbytes = engine._encode_packed(engine._validate(batch)).words.nbytes
        with ClusterDispatcher(engine, num_workers=1, transport="shm") as d:
            assert d.info()["ships_packed_queries"] is True
            d.decision_scores(batch)
            sent = d.transport_stats()["per_worker"][0]
            # Request payload = the packed words (32x smaller than float64
            # rows at D=256/F=24); everything else is reply scores.
            reply_nbytes = 16 * d.num_classes * 8
            assert sent["shm_bytes"] == packed_nbytes + reply_nbytes
            assert packed_nbytes < batch.nbytes


class TestShmRing:
    def test_slab_auto_growth_preserves_parity(self, served):
        engine, queries = served
        transport = Transport("shm", initial_slab_bytes=32)
        with ClusterDispatcher(engine, num_workers=2, transport=transport) as d:
            assert np.array_equal(
                d.decision_scores(queries), engine.decision_scores(queries)
            )
            stats = d.transport_stats()["totals"]
            assert stats["slab_grows"] > 0
            assert stats["inline_fallbacks"] == 0  # growth, not degrade

    def test_slab_rejects_torn_reads(self):
        slab = _Slab.create(64)
        try:
            payload = np.arange(4, dtype=np.uint64)
            slab.write(7, [payload])
            round_tripped = np.frombuffer(
                slab.read(7, payload.nbytes), dtype=np.uint64
            )
            assert np.array_equal(round_tripped, payload)
            with pytest.raises(TransportError, match="generation"):
                slab.read(8, payload.nbytes)  # stale/foreign generation
            with pytest.raises(TransportError, match="mismatch"):
                slab.read(7, payload.nbytes - 8)  # size disagrees with frame
        finally:
            slab.close()

    def test_endpoint_pair_detects_generation_races(self, rng):
        """Drive the shm endpoints in-process to hit both race detectors."""
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        parent = ShmParentEndpoint(parent_conn, initial_slab_bytes=256)
        worker = ShmWorkerEndpoint(child_conn)
        try:
            batch = rng.standard_normal((2, 4))
            # A reply carrying a stale generation (worker answered an older
            # request) is refused parent-side.
            parent.send_request({"op": "scores", "reply_nbytes_hint": 64}, [batch])
            header, arrays = worker.recv()
            assert header["op"] == "scores"
            assert np.array_equal(arrays[0], batch)
            worker._generation -= 1  # simulate answering the previous frame
            worker.send_ok(None, [batch], [])
            with pytest.raises(TransportError, match="generation"):
                parent.recv_reply()
            # A request slab scribbled after the frame was cut (torn write)
            # is refused worker-side.
            parent.send_request({"op": "scores", "reply_nbytes_hint": 64}, [batch])
            scribbler = _Slab.attach(parent._request_slab.name)
            try:
                buf = scribbler._segment.buf
                buf[0] = (buf[0] + 1) % 256  # bump the generation word
                with pytest.raises(TransportError, match="mismatch"):
                    worker.recv()
            finally:
                scribbler.close()
        finally:
            worker.close()
            parent.close()
            parent_conn.close()
            child_conn.close()

    def test_reply_outgrowing_its_slab_falls_back_inline(self, rng):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        parent = ShmParentEndpoint(parent_conn, initial_slab_bytes=64)
        worker = ShmWorkerEndpoint(child_conn)
        try:
            small = rng.standard_normal((1, 4))
            big = rng.standard_normal((32, 32))
            parent.send_request({"op": "scores", "reply_nbytes_hint": 0}, [small])
            worker.recv()
            worker.send_ok(None, [big], [])  # 8 KiB into a 64 B response slab
            reply = parent.recv_reply()
            assert reply[0] == "ok"
            assert np.array_equal(reply[2][0], big)
            assert parent.counters.inline_fallbacks == 1
        finally:
            worker.close()
            parent.close()
            parent_conn.close()
            child_conn.close()

    def test_poison_worker_chaos_on_shm_path(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2, transport="shm") as d:
            d.poison_worker(0)
            # The crash retires the worker and the lost shard is retried
            # once on the respawned pool — a single poison is fully masked.
            labels, _ = d.top_k(queries, k=1)
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert d.respawns == 1
            assert d.shard_retries >= 1

    def test_kill_mid_batch_on_shm_path(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2, transport="shm") as d:
            victim = d.info()["worker_pids"][0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.kill(victim, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.01)
            # The dead worker is respawned transparently at the next ensure.
            assert np.array_equal(
                d.decision_scores(queries), engine.decision_scores(queries)
            )


class TestTcp:
    def test_frames_travel_a_real_localhost_socket(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2, transport="tcp") as d:
            labels, _ = d.top_k(queries, k=2)
            assert np.array_equal(labels, engine.top_k(queries, k=2)[0])
            totals = d.transport_stats()["totals"]
            assert totals["socket_bytes"] > 0
            assert totals["pipe_bytes"] == 0  # only the handshake used it
            assert len(set(d.ping())) == 2

    def test_poison_worker_chaos_on_tcp_path(self, served):
        engine, queries = served
        with ClusterDispatcher(engine, num_workers=2, transport="tcp") as d:
            d.poison_worker(1)
            labels, _ = d.top_k(queries, k=1)  # masked by the retry-once path
            assert np.array_equal(labels, engine.top_k(queries, k=1)[0])
            assert np.array_equal(
                d.decision_scores(queries), engine.decision_scores(queries)
            )
            assert d.respawns == 1
            assert d.shard_retries >= 1


class TestSurfaces:
    def test_unknown_transport_rejected(self, served):
        engine, _ = served
        with pytest.raises(ValueError, match="unknown transport"):
            ClusterDispatcher(engine, num_workers=1, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("udp")

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_info_and_stats_expose_the_transport(self, served, transport):
        engine, queries = served
        with ClusterDispatcher(
            engine, num_workers=2, transport=transport, cpu_affinity="auto"
        ) as d:
            d.top_k(queries[:8], k=1)
            info = d.info()
            assert info["transport"] == transport
            assert info["cpu_count"] == (os.cpu_count() or 1)
            assert len(info["pin_map"]) == 2
            stats = info["transport_stats"]
            assert stats["transport"] == transport
            assert len(stats["per_worker"]) == 2
            assert stats["totals"]["frames_sent"] >= 2
            assert stats["totals"]["payload_bytes"] > 0
            if transport == "shm":
                assert stats["totals"]["bytes_avoided"] > 0
                for endpoint in stats["per_worker"]:
                    assert 0.0 <= endpoint["request_slab"]["occupancy"] <= 1.0
                    assert 0.0 <= endpoint["response_slab"]["occupancy"] <= 1.0

    def test_shm_moves_fewer_pipe_bytes_than_pipe(self, served):
        engine, queries = served
        batch = queries[:32]
        pipe_bytes = {}
        for transport in ("pipe", "shm"):
            with ClusterDispatcher(engine, num_workers=1, transport=transport) as d:
                d.top_k(batch, k=3)
                pipe_bytes[transport] = d.transport_stats()["totals"]["pipe_bytes"]
        assert pipe_bytes["shm"] * 10 <= pipe_bytes["pipe"]

    def test_affinity_helpers(self):
        cpus = available_cpus()
        assert cpus and all(isinstance(cpu, int) for cpu in cpus)
        pin_map = build_pin_map(4, cpus=[0, 1])
        assert pin_map == {0: 0, 1: 1, 2: 0, 3: 1}
        assert build_pin_map(2, cpus=[]) == {}
