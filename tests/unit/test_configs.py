"""Unit tests for repro.core.configs."""

import dataclasses

import pytest

from repro.core.configs import DEFAULT_CONFIG, PAPER_CONFIGS, LeHDCConfig, get_paper_config


class TestLeHDCConfig:
    def test_defaults_valid(self):
        config = LeHDCConfig()
        assert config.optimizer == "adam"
        assert config.latent_clip == 1.0

    def test_frozen(self):
        config = LeHDCConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.learning_rate = 0.5

    def test_with_overrides(self):
        config = LeHDCConfig().with_overrides(epochs=7, dropout_rate=0.1)
        assert config.epochs == 7
        assert config.dropout_rate == 0.1
        # The original is unchanged.
        assert LeHDCConfig().epochs == 100

    @pytest.mark.parametrize(
        "field,value",
        [
            ("learning_rate", 0.0),
            ("weight_decay", -0.1),
            ("batch_size", 0),
            ("dropout_rate", 1.0),
            ("epochs", 0),
            ("optimizer", "rmsprop"),
            ("latent_clip", 0.0),
            ("lr_decay_factor", 0.0),
            ("lr_decay_factor", 1.5),
            ("lr_decay_patience", 0),
            ("init_scale", 0.0),
            ("validation_fraction", 1.0),
            ("grad_clip_norm", 0.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises((ValueError, TypeError)):
            LeHDCConfig(**{field: value})


class TestPaperConfigs:
    def test_all_six_datasets_covered(self):
        assert set(PAPER_CONFIGS) == {
            "mnist",
            "fashion_mnist",
            "cifar10",
            "ucihar",
            "isolet",
            "pamap",
        }

    def test_table2_values(self):
        # Spot-check the exact Table 2 numbers.
        fashion = PAPER_CONFIGS["fashion_mnist"]
        assert fashion.weight_decay == 0.03
        assert fashion.learning_rate == 0.1
        assert fashion.batch_size == 256
        assert fashion.dropout_rate == 0.3
        assert fashion.epochs == 200

        cifar = PAPER_CONFIGS["cifar10"]
        assert cifar.learning_rate == 0.001
        assert cifar.batch_size == 512

        mnist = PAPER_CONFIGS["mnist"]
        assert mnist.weight_decay == 0.05
        assert mnist.epochs == 100

    def test_sensor_datasets_share_row(self):
        assert PAPER_CONFIGS["ucihar"] == PAPER_CONFIGS["isolet"] == PAPER_CONFIGS["pamap"]

    def test_get_paper_config_normalises_name(self):
        assert get_paper_config("Fashion-MNIST") == PAPER_CONFIGS["fashion_mnist"]
        assert get_paper_config("CIFAR10") == PAPER_CONFIGS["cifar10"]

    def test_get_paper_config_fallback(self):
        assert get_paper_config("unknown-dataset") == DEFAULT_CONFIG
