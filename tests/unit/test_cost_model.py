"""Unit tests for repro.hardware.cost_model."""

import pytest

from repro.hardware.cost_model import InferenceCostModel, compare_strategies


class TestInferenceCostModel:
    def test_words_per_hypervector(self):
        model = InferenceCostModel(dimension=10_000, num_classes=10)
        assert model.words_per_hypervector == 157  # ceil(10000 / 64)

    def test_single_model_cost(self):
        model = InferenceCostModel(dimension=1024, num_classes=4)
        cost = model.cost("baseline")
        assert cost.storage_bits == 4 * 1024
        assert cost.xor_popcount_ops == 4 * 16
        assert cost.comparison_ops == 3

    def test_storage_kib(self):
        model = InferenceCostModel(dimension=8192, num_classes=1)
        assert model.cost("x").storage_kib == pytest.approx(1.0)

    def test_multimodel_scales_linearly(self):
        model = InferenceCostModel(dimension=2048, num_classes=5)
        single = model.cost("single")
        ensemble = model.cost("ensemble", models_per_class=8)
        assert ensemble.storage_bits == 8 * single.storage_bits
        assert ensemble.xor_popcount_ops == 8 * single.xor_popcount_ops

    def test_encoding_cost_identical_concept(self):
        model = InferenceCostModel(dimension=1000, num_classes=3)
        assert model.encoding_cost_ops(50) == 50 * 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceCostModel(dimension=0, num_classes=2)
        model = InferenceCostModel(dimension=10, num_classes=2)
        with pytest.raises(ValueError):
            model.cost("x", models_per_class=0)


class TestCompareStrategies:
    def test_lehdc_matches_baseline_and_retraining(self):
        costs = compare_strategies(dimension=10_000, num_classes=10)
        assert costs["lehdc"].storage_bits == costs["baseline"].storage_bits
        assert costs["lehdc"].latency_cycles == costs["retraining"].latency_cycles
        assert costs["lehdc"].xor_popcount_ops == costs["baseline"].xor_popcount_ops

    def test_multimodel_is_64x_storage_by_default(self):
        costs = compare_strategies(dimension=10_000, num_classes=10)
        assert costs["multimodel"].storage_bits == 64 * costs["baseline"].storage_bits

    def test_custom_ensemble_size(self):
        costs = compare_strategies(
            dimension=4096, num_classes=6, multimodel_models_per_class=8
        )
        assert costs["multimodel"].storage_bits == 8 * costs["baseline"].storage_bits
