"""Unit tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, train_test_split


def make_dataset(num_train=40, num_test=20, num_features=6, num_classes=3):
    rng = np.random.default_rng(0)
    return Dataset(
        name="toy",
        train_features=rng.normal(size=(num_train, num_features)),
        train_labels=rng.integers(0, num_classes, size=num_train),
        test_features=rng.normal(size=(num_test, num_features)),
        test_labels=rng.integers(0, num_classes, size=num_test),
        metadata={"source": "test"},
    )


class TestDataset:
    def test_properties(self):
        data = make_dataset()
        assert data.num_train == 40
        assert data.num_test == 20
        assert data.num_features == 6
        assert data.num_classes >= 1
        assert "toy" in data.describe()

    def test_feature_column_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                train_features=rng.normal(size=(5, 4)),
                train_labels=np.zeros(5, dtype=int),
                test_features=rng.normal(size=(3, 6)),
                test_labels=np.zeros(3, dtype=int),
            )

    def test_label_length_mismatch_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            Dataset(
                name="bad",
                train_features=rng.normal(size=(5, 4)),
                train_labels=np.zeros(4, dtype=int),
                test_features=rng.normal(size=(3, 4)),
                test_labels=np.zeros(3, dtype=int),
            )

    def test_subsample(self):
        data = make_dataset()
        small = data.subsample(max_train=10, max_test=5, seed=0)
        assert small.num_train == 10
        assert small.num_test == 5
        assert small.metadata["subsampled"] is True

    def test_subsample_noop_when_larger_than_data(self):
        data = make_dataset()
        same = data.subsample(max_train=1000, seed=0)
        assert same.num_train == data.num_train

    def test_subsample_invalid(self):
        with pytest.raises(ValueError):
            make_dataset().subsample(max_train=0, seed=0)


class TestTrainTestSplit:
    def test_sizes(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(100, 5))
        labels = rng.integers(0, 3, size=100)
        train_x, train_y, test_x, test_y = train_test_split(
            features, labels, test_fraction=0.25, seed=0
        )
        assert test_x.shape[0] == 25
        assert train_x.shape[0] == 75
        assert train_y.shape[0] == 75
        assert test_y.shape[0] == 25

    def test_no_overlap_and_full_coverage(self):
        features = np.arange(20, dtype=np.float64).reshape(-1, 1)
        labels = np.zeros(20, dtype=int)
        train_x, _, test_x, _ = train_test_split(features, labels, 0.3, seed=1)
        combined = np.sort(np.concatenate([train_x.ravel(), test_x.ravel()]))
        np.testing.assert_array_equal(combined, np.arange(20))

    def test_reproducible(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(30, 2))
        labels = rng.integers(0, 2, size=30)
        a = train_test_split(features, labels, 0.2, seed=9)
        b = train_test_split(features, labels, 0.2, seed=9)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_fraction(self):
        features = np.zeros((10, 2))
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            train_test_split(features, labels, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(features, labels, test_fraction=1.0)
