"""Unit tests for repro.hdc.encoders."""

import numpy as np
import pytest

from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.hdc.hypervector import hamming_distance


@pytest.fixture(scope="module")
def features():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 1, size=(60, 12))


class TestRecordEncoder:
    def test_output_shape_and_values(self, features):
        encoder = RecordEncoder(dimension=512, num_levels=8, seed=0)
        encoded = encoder.fit_encode(features)
        assert encoded.shape == (60, 512)
        assert set(np.unique(encoded)) <= {-1, 1}

    def test_encode_before_fit_raises(self, features):
        with pytest.raises(RuntimeError):
            RecordEncoder(dimension=128, seed=0).encode(features)

    def test_deterministic_with_positive_tie_break(self, features):
        encoder = RecordEncoder(
            dimension=256, num_levels=8, tie_break="positive", seed=3
        )
        encoder.fit(features)
        np.testing.assert_array_equal(encoder.encode(features), encoder.encode(features))

    def test_similar_inputs_have_similar_codes(self):
        encoder = RecordEncoder(dimension=4096, num_levels=16, seed=1)
        base = np.random.default_rng(2).uniform(0, 1, size=(1, 10))
        near = base + 0.02
        far = 1.0 - base
        encoder.fit(np.vstack([base, near, far, np.zeros((1, 10)), np.ones((1, 10))]))
        encoded = encoder.encode(np.vstack([base, near, far]))
        assert hamming_distance(encoded[0], encoded[1]) < hamming_distance(
            encoded[0], encoded[2]
        )

    def test_encode_one(self, features):
        encoder = RecordEncoder(dimension=256, num_levels=8, seed=4)
        encoder.fit(features)
        single = encoder.encode_one(features[0])
        assert single.shape == (256,)

    def test_batching_does_not_change_result(self, features):
        encoder = RecordEncoder(
            dimension=256, num_levels=8, tie_break="positive", seed=5
        )
        encoder.fit(features)
        np.testing.assert_array_equal(
            encoder.encode(features, batch_size=7),
            encoder.encode(features, batch_size=60),
        )

    def test_feature_count_mismatch(self, features):
        encoder = RecordEncoder(dimension=128, seed=6)
        encoder.fit(features)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((3, 5)))

    def test_quantile_quantizer_option(self, features):
        encoder = RecordEncoder(dimension=256, num_levels=8, quantizer="quantile", seed=7)
        encoded = encoder.fit_encode(features)
        assert encoded.shape == (60, 256)

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            RecordEncoder(quantizer="log")
        with pytest.raises(ValueError):
            RecordEncoder(tie_break="always")
        with pytest.raises(ValueError):
            RecordEncoder(dimension=0)


class TestNGramEncoder:
    def test_output_shape(self, features):
        encoder = NGramEncoder(dimension=512, num_levels=8, ngram=3, seed=0)
        encoded = encoder.fit_encode(features)
        assert encoded.shape == (60, 512)
        assert set(np.unique(encoded)) <= {-1, 1}

    def test_ngram_larger_than_features_rejected(self):
        encoder = NGramEncoder(dimension=128, ngram=20, seed=1)
        with pytest.raises(ValueError):
            encoder.fit(np.zeros((4, 10)) + np.arange(10))

    def test_different_from_record_encoding(self, features):
        record = RecordEncoder(dimension=1024, num_levels=8, tie_break="positive", seed=2)
        ngram = NGramEncoder(
            dimension=1024, num_levels=8, ngram=2, tie_break="positive", seed=2
        )
        record_encoded = record.fit_encode(features)
        ngram_encoded = ngram.fit_encode(features)
        assert not np.array_equal(record_encoded, ngram_encoded)

    def test_order_sensitivity(self):
        # N-gram encoding should distinguish feature orderings that the
        # record encoder (by design) also distinguishes via position vectors;
        # here we check the n-gram code changes when the sequence is reversed.
        rng = np.random.default_rng(3)
        data = rng.uniform(0, 1, size=(8, 10))
        encoder = NGramEncoder(
            dimension=2048, num_levels=8, ngram=3, tie_break="positive", seed=4
        )
        encoder.fit(data)
        forward = encoder.encode(data[:1])
        backward = encoder.encode(data[:1][:, ::-1])
        assert hamming_distance(forward[0], backward[0]) > 0.1
