"""Unit tests for repro.classifiers.enhanced."""

import numpy as np

from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.retraining import RetrainingHDC


class TestEnhancedRetrainingHDC:
    def test_fit_and_score(self, encoded_problem):
        model = EnhancedRetrainingHDC(iterations=5, seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_updates_multiple_wrong_classes(self):
        # Construct a situation with two wrong classes closer than the truth:
        # the enhanced update must move both, the basic update only one.
        dimension = 64
        rng = np.random.default_rng(0)
        sample = (2 * rng.integers(0, 2, size=dimension) - 1).astype(np.float64)
        nonbinary = np.vstack(
            [
                -sample * 0.1,  # true class, far from sample
                sample * 0.9,  # wrong class 1, very close
                sample * 0.8,  # wrong class 2, also close
            ]
        )
        scores = nonbinary_scores = np.sign(nonbinary) @ sample

        enhanced = EnhancedRetrainingHDC(iterations=1, seed=1)
        enhanced_state = nonbinary.copy()
        enhanced._update(enhanced_state, sample, 0, 1, alpha=1.0, scores=scores)

        basic = RetrainingHDC(iterations=1, seed=2)
        basic_state = nonbinary.copy()
        basic._update(basic_state, sample, 0, 1, alpha=1.0, scores=nonbinary_scores)

        # Both strategies move class 0 (true) and class 1 (predicted); only the
        # enhanced strategy also moves class 2.
        assert not np.allclose(enhanced_state[2], nonbinary[2])
        np.testing.assert_allclose(basic_state[2], nonbinary[2])

    def test_update_scale_depends_on_distance(self):
        dimension = 32
        sample = np.ones(dimension)
        # True class nearly identical to the sample -> tiny pull.
        near = np.vstack([sample * 0.9, -sample * 0.9])
        near_scores = np.sign(near) @ sample
        # True class opposite to the sample -> large pull.
        far = np.vstack([-sample * 0.9, sample * 0.9])
        far_scores = np.sign(far) @ sample

        model = EnhancedRetrainingHDC(iterations=1, seed=3)
        near_state = near.copy()
        model._update(near_state, sample, 0, 1, alpha=1.0, scores=near_scores)
        far_state = far.copy()
        model._update(far_state, sample, 0, 1, alpha=1.0, scores=far_scores)

        near_delta = np.abs(near_state[0] - near[0]).sum()
        far_delta = np.abs(far_state[0] - far[0]).sum()
        assert far_delta > near_delta

    def test_history_compatible_with_parent(self, encoded_problem):
        model = EnhancedRetrainingHDC(iterations=3, epsilon=0.0, seed=4)
        model.fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
        )
        assert model.history_.iterations == 3
        assert len(model.history_.test_accuracy) == 3
