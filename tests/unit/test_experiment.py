"""Unit tests for repro.eval.experiment."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_gaussian_classes
from repro.eval.experiment import (
    ExperimentResult,
    StrategyResult,
    default_strategy_factories,
    run_strategy_comparison,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    train_x, train_y, test_x, test_y = make_gaussian_classes(
        num_classes=3,
        num_features=16,
        train_size=120,
        test_size=60,
        class_sep=2.5,
        clusters_per_class=2,
        seed=0,
    )
    return Dataset(
        name="tiny",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
    )


FAST_STRATEGIES = {
    "baseline": lambda rng: BaselineHDC(seed=rng),
    "lehdc": lambda rng: LeHDCClassifier(
        config=LeHDCConfig(epochs=8, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
        seed=rng,
    ),
}


class TestRunStrategyComparison:
    def test_runs_and_aggregates(self, tiny_dataset):
        result = run_strategy_comparison(
            dataset=tiny_dataset,
            strategies=FAST_STRATEGIES,
            dimension=512,
            num_levels=8,
            repetitions=2,
            seed=0,
        )
        assert isinstance(result, ExperimentResult)
        assert set(result.strategies) == {"baseline", "lehdc"}
        for strategy in result.strategies.values():
            assert len(strategy.test_accuracies) == 2
            assert 0.0 <= strategy.test_summary.mean <= 1.0

    def test_summary_percent(self, tiny_dataset):
        result = run_strategy_comparison(
            dataset=tiny_dataset,
            strategies=FAST_STRATEGIES,
            dimension=256,
            num_levels=8,
            repetitions=1,
            seed=1,
        )
        summary = result.summary_percent()
        assert summary["baseline"].mean > 30.0  # percent, not fraction

    def test_increment_over(self, tiny_dataset):
        result = run_strategy_comparison(
            dataset=tiny_dataset,
            strategies=FAST_STRATEGIES,
            dimension=256,
            num_levels=8,
            repetitions=1,
            seed=2,
        )
        increment = result.increment_over("baseline", "lehdc")
        assert isinstance(increment, float)

    def test_requires_exactly_one_dataset_argument(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_strategy_comparison(strategies=FAST_STRATEGIES)
        with pytest.raises(ValueError):
            run_strategy_comparison(
                dataset=tiny_dataset, dataset_name="mnist", strategies=FAST_STRATEGIES
            )

    def test_dataset_by_name_uses_registry(self):
        result = run_strategy_comparison(
            dataset_name="pamap",
            strategies=FAST_STRATEGIES,
            dimension=256,
            num_levels=8,
            repetitions=1,
            profile="tiny",
            seed=3,
        )
        assert result.dataset_name == "pamap"

    def test_invalid_encoder_kind(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_strategy_comparison(
                dataset=tiny_dataset,
                strategies=FAST_STRATEGIES,
                dimension=256,
                encoder_kind="fourier",
            )

    def test_ngram_encoder_supported(self, tiny_dataset):
        result = run_strategy_comparison(
            dataset=tiny_dataset,
            strategies={"baseline": FAST_STRATEGIES["baseline"]},
            dimension=256,
            num_levels=8,
            repetitions=1,
            seed=4,
            encoder_kind="ngram",
        )
        assert result.strategies["baseline"].test_summary.mean > 0.3


class TestDefaultStrategyFactories:
    def test_contains_table1_strategies(self):
        factories = default_strategy_factories("mnist")
        assert set(factories) == {"baseline", "multimodel", "retraining", "lehdc"}

    def test_epoch_override(self):
        factories = default_strategy_factories("mnist", lehdc_epochs=5)
        classifier = factories["lehdc"](np.random.default_rng(0))
        assert classifier.config.epochs == 5

    def test_uses_paper_config_for_dataset(self):
        factories = default_strategy_factories("cifar10")
        classifier = factories["lehdc"](np.random.default_rng(0))
        assert classifier.config.weight_decay == 0.03


class TestStrategyResult:
    def test_summaries(self):
        result = StrategyResult(name="x", test_accuracies=[0.5, 0.7], train_accuracies=[0.8, 0.9])
        assert result.test_summary.mean == pytest.approx(0.6)
        assert result.train_summary.mean == pytest.approx(0.85)
