"""Unit tests for repro.faults: determinism, parsing, pickling, presets."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import FAULT_KINDS, PRESETS, FaultInjector, FaultPlan, FaultRule


class TestFaultRule:
    def test_requires_exactly_one_schedule(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultRule(kind="crash")
        with pytest.raises(ValueError, match="exactly one"):
            FaultRule(kind="crash", at=3, every=5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(kind="gremlin", at=1)

    def test_at_fires_exactly_once(self):
        rule = FaultRule(kind="crash", at=3)
        fired = [count for count in range(1, 20) if rule.fires(count, 0, seed=0)]
        assert fired == [3]

    def test_every_fires_periodically_from_after(self):
        rule = FaultRule(kind="error", every=5, after=4)
        fired = [count for count in range(1, 25) if rule.fires(count, 0, seed=0)]
        assert fired == [4, 9, 14, 19, 24]

    def test_worker_restriction(self):
        rule = FaultRule(kind="hang", at=2, workers=(1,))
        assert not rule.fires(2, 0, seed=0)
        assert rule.fires(2, 1, seed=0)

    def test_rate_is_deterministic_and_roughly_calibrated(self):
        rule = FaultRule(kind="slow", rate=0.2)
        first = [rule.fires(count, 0, seed=7) for count in range(1, 501)]
        second = [rule.fires(count, 0, seed=7) for count in range(1, 501)]
        assert first == second  # same seed, same schedule — always
        hits = sum(first)
        assert 50 <= hits <= 150  # ~100 expected at rate 0.2
        other_seed = [rule.fires(count, 0, seed=8) for count in range(1, 501)]
        assert first != other_seed

    def test_rate_differs_by_worker(self):
        rule = FaultRule(kind="slow", rate=0.2)
        worker0 = [rule.fires(count, 0, seed=7) for count in range(1, 201)]
        worker1 = [rule.fires(count, 1, seed=7) for count in range(1, 201)]
        assert worker0 != worker1


class TestFaultPlan:
    def test_plan_is_picklable(self):
        plan = PRESETS["quick"]
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.describe() == plan.describe()

    def test_json_round_trip(self):
        plan = FaultPlan.from_spec("crash:at=3:workers=0+1;seed=9;hang_seconds=2")
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.seed == 9
        assert clone.hang_seconds == 2.0
        assert clone.rules[0].workers == (0, 1)

    def test_from_spec_parses_rules_and_options(self):
        plan = FaultPlan.from_spec("error:every=5:after=2;slow:rate=0.5;seed=3")
        assert plan.seed == 3
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["error", "slow"]
        assert plan.rules[0].every == 5
        assert plan.rules[1].rate == 0.5

    def test_bare_kind_defaults_to_low_rate(self):
        plan = FaultPlan.from_spec("crash")
        assert plan.rules[0].kind == "crash"
        assert plan.rules[0].rate == 0.01

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("crash:bogus=1")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("volume=11")

    def test_resolve_off_values(self):
        assert FaultPlan.resolve(None) is None
        assert FaultPlan.resolve("") is None
        assert FaultPlan.resolve("off") is None
        assert FaultPlan.resolve("none") is None
        assert FaultPlan.resolve("quick") == PRESETS["quick"]

    def test_from_env(self, monkeypatch):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": "crash:at=2"})
        assert plan.rules[0].at == 2
        seeded = FaultPlan.from_env(
            {"REPRO_FAULTS": "crash:at=2", "REPRO_FAULTS_SEED": "42"}
        )
        assert seeded.seed == 42

    def test_presets_cover_every_kind(self):
        from repro.faults import PARENT_KINDS, WORKER_KINDS

        # The worker-chaos presets cover the whole worker taxonomy and the
        # fleet-churn preset covers the whole parent taxonomy; together the
        # named presets exercise every kind.
        for name in ("quick", "soak"):
            kinds = {rule.kind for rule in PRESETS[name].rules}
            assert kinds == set(WORKER_KINDS), name
        churn_kinds = {rule.kind for rule in PRESETS["evict-churn"].rules}
        assert set(PARENT_KINDS) <= churn_kinds
        all_kinds = {
            rule.kind for plan in PRESETS.values() for rule in plan.rules
        }
        assert all_kinds == set(FAULT_KINDS)

    def test_describe_short_is_one_line(self):
        text = PRESETS["quick"].describe_short()
        assert "\n" not in text
        assert "crash" in text and "seed=0" in text


class TestFaultInjector:
    def test_injector_counts_and_draws(self):
        plan = FaultPlan.from_spec("error:at=2;slow:at=4")
        injector = plan.injector(worker_index=0)
        draws = [injector.draw() for _ in range(5)]
        assert draws == [None, "error", None, "slow", None]
        assert injector.count == 5
        assert injector.injected == {"error": 1, "slow": 1}

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.from_spec("crash:at=2;error:at=2")
        assert plan.injector(0).count == 0
        draws = [plan.injector(0).draw() for _ in range(1)]
        injector = plan.injector(0)
        injector.draw()
        assert injector.draw() == "crash"
        assert draws == [None]

    def test_injector_is_per_worker(self):
        plan = FaultPlan.from_spec("hang:at=1:workers=1")
        assert plan.injector(0).draw() is None
        assert plan.injector(1).draw() == "hang"
