"""Unit tests for repro.eval.figures."""

import pytest

from repro.eval.figures import TrajectorySeries, render_trajectories, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone_series_uses_full_range(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestTrajectorySeries:
    def test_properties(self):
        series = TrajectorySeries("acc", [1, 2, 3], [0.5, 0.8, 0.7])
        assert series.final == 0.7
        assert series.best == 0.8

    def test_oscillation_detects_noise(self):
        smooth = TrajectorySeries("smooth", list(range(10)), [0.1 * i for i in range(10)])
        noisy = TrajectorySeries(
            "noisy", list(range(10)), [0.5 + 0.3 * ((-1) ** i) for i in range(10)]
        )
        assert noisy.oscillation() > smooth.oscillation()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TrajectorySeries("bad", [1, 2], [0.1])

    def test_empty(self):
        with pytest.raises(ValueError):
            TrajectorySeries("empty", [], [])


class TestRenderTrajectories:
    def test_contains_names_and_summaries(self):
        series = [
            TrajectorySeries("basic", [1, 2, 3], [0.5, 0.6, 0.55]),
            TrajectorySeries("enhanced", [1, 2, 3], [0.6, 0.7, 0.72]),
        ]
        text = render_trajectories(series, title="Fig 3", x_label="iteration")
        assert "Fig 3" in text
        assert "basic" in text and "enhanced" in text
        assert "final=" in text and "oscillation=" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_trajectories([])
