"""Unit tests for repro.hdc.hypervector."""

import numpy as np
import pytest

from repro.hdc.hypervector import (
    BIPOLAR_DTYPE,
    bind,
    bundle,
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    permute,
    random_hypervectors,
    sign_with_ties,
)


class TestRandomHypervectors:
    def test_shape_dtype_values(self):
        vectors = random_hypervectors(5, 200, seed=0)
        assert vectors.shape == (5, 200)
        assert vectors.dtype == BIPOLAR_DTYPE
        assert set(np.unique(vectors)) <= {-1, 1}

    def test_reproducible(self):
        np.testing.assert_array_equal(
            random_hypervectors(3, 100, seed=1), random_hypervectors(3, 100, seed=1)
        )

    def test_quasi_orthogonality(self):
        vectors = random_hypervectors(2, 10_000, seed=2)
        distance = hamming_distance(vectors[0], vectors[1])
        assert 0.45 < distance < 0.55

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_hypervectors(0, 10)
        with pytest.raises(ValueError):
            random_hypervectors(10, 0)


class TestSignWithTies:
    def test_positive_and_negative(self):
        result = sign_with_ties(np.array([3, -2, 5, -1]))
        np.testing.assert_array_equal(result, [1, -1, 1, -1])

    def test_zero_positive_tie_break(self):
        result = sign_with_ties(np.array([0, 0, 0]), tie_break="positive")
        np.testing.assert_array_equal(result, [1, 1, 1])

    def test_zero_random_tie_break_uses_rng(self):
        values = np.zeros(1000)
        result = sign_with_ties(values, rng=np.random.default_rng(0), tie_break="random")
        # Random ties should produce a roughly balanced mix of +1 and -1.
        positives = int((result == 1).sum())
        assert 400 < positives < 600

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            sign_with_ties(np.array([1.0]), tie_break="up")

    def test_output_dtype(self):
        assert sign_with_ties(np.array([1.5, -0.2])).dtype == BIPOLAR_DTYPE


class TestBind:
    def test_self_inverse(self):
        a = random_hypervectors(1, 500, seed=3)[0]
        b = random_hypervectors(1, 500, seed=4)[0]
        np.testing.assert_array_equal(bind(bind(a, b), b), a)

    def test_commutative(self):
        a = random_hypervectors(1, 300, seed=5)[0]
        b = random_hypervectors(1, 300, seed=6)[0]
        np.testing.assert_array_equal(bind(a, b), bind(b, a))

    def test_result_quasi_orthogonal_to_inputs(self):
        a = random_hypervectors(1, 10_000, seed=7)[0]
        b = random_hypervectors(1, 10_000, seed=8)[0]
        bound = bind(a, b)
        assert 0.45 < hamming_distance(bound, a) < 0.55

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            bind(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))


class TestBundle:
    def test_majority(self):
        rows = np.array([[1, 1, -1], [1, -1, -1], [1, 1, 1]], dtype=np.int8)
        result = bundle(rows, tie_break="positive")
        np.testing.assert_array_equal(result, [1, 1, -1])

    def test_bundle_is_similar_to_members(self):
        members = random_hypervectors(5, 10_000, seed=9)
        bundled = bundle(members, rng=np.random.default_rng(0))
        outsider = random_hypervectors(1, 10_000, seed=10)[0]
        for member in members:
            assert hamming_distance(bundled, member) < hamming_distance(bundled, outsider)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            bundle(np.ones(10, dtype=np.int8))


class TestPermute:
    def test_roundtrip(self):
        vector = random_hypervectors(1, 64, seed=11)[0]
        np.testing.assert_array_equal(permute(permute(vector, 3), -3), vector)

    def test_preserves_values(self):
        vector = random_hypervectors(1, 64, seed=12)[0]
        assert sorted(permute(vector, 5).tolist()) == sorted(vector.tolist())


class TestSimilarities:
    def test_hamming_identity_and_opposite(self):
        vector = random_hypervectors(1, 256, seed=13)[0]
        assert hamming_distance(vector, vector) == 0.0
        assert hamming_distance(vector, -vector) == 1.0

    def test_cosine_hamming_relation(self):
        a = random_hypervectors(1, 2048, seed=14)[0]
        b = random_hypervectors(1, 2048, seed=15)[0]
        cosine = cosine_similarity(a, b)
        hamming = hamming_distance(a, b)
        assert cosine == pytest.approx(1.0 - 2.0 * hamming, abs=1e-12)

    def test_dot_equals_cosine_times_dimension(self):
        a = random_hypervectors(1, 512, seed=16)[0]
        b = random_hypervectors(1, 512, seed=17)[0]
        assert dot_similarity(a, b) == pytest.approx(512 * cosine_similarity(a, b))

    def test_matrix_shapes(self):
        queries = random_hypervectors(4, 128, seed=18)
        classes = random_hypervectors(3, 128, seed=19)
        assert hamming_distance(queries, classes).shape == (4, 3)
        assert dot_similarity(queries, classes).shape == (4, 3)
        assert cosine_similarity(queries, classes).shape == (4, 3)

    def test_vector_vs_matrix_shape(self):
        query = random_hypervectors(1, 128, seed=20)[0]
        classes = random_hypervectors(3, 128, seed=21)
        assert hamming_distance(query, classes).shape == (3,)
        assert dot_similarity(classes, query).shape == (3,)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))
        with pytest.raises(ValueError):
            dot_similarity(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))

    def test_argmin_hamming_equals_argmax_dot(self):
        # The core equivalence (Eq. 6) behind the whole paper.
        queries = random_hypervectors(10, 1024, seed=22)
        classes = random_hypervectors(5, 1024, seed=23)
        by_hamming = np.argmin(hamming_distance(queries, classes), axis=1)
        by_dot = np.argmax(dot_similarity(queries, classes), axis=1)
        np.testing.assert_array_equal(by_hamming, by_dot)
