"""Unit tests for repro.io (model persistence)."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.io import load_model, read_model_metadata, save_model


def make_fitted_pipeline(small_problem, classifier=None, encoder=None):
    encoder = encoder or RecordEncoder(
        dimension=512, num_levels=8, tie_break="positive", seed=0
    )
    classifier = classifier or BaselineHDC(seed=0)
    pipeline = HDCPipeline(encoder, classifier)
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return pipeline


class TestSaveLoadRoundtrip:
    def test_predictions_identical_after_reload(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "model.npz", pipeline, strategy_name="baseline")
        reloaded = load_model(path)
        original = pipeline.predict(small_problem["test_features"])
        restored = reloaded.predict(small_problem["test_features"])
        np.testing.assert_array_equal(original, restored)

    def test_lehdc_model_roundtrip(self, small_problem, tmp_path):
        classifier = LeHDCClassifier(
            config=LeHDCConfig(epochs=5, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
            seed=1,
        )
        encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=1)
        pipeline = make_fitted_pipeline(small_problem, classifier=classifier, encoder=encoder)
        path = save_model(tmp_path / "lehdc", pipeline, strategy_name="lehdc")
        assert str(path).endswith(".npz")
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            reloaded.class_hypervectors_, pipeline.class_hypervectors_
        )

    def test_ngram_encoder_roundtrip(self, small_problem, tmp_path):
        encoder = NGramEncoder(
            dimension=256, num_levels=8, ngram=3, tie_break="positive", seed=2
        )
        pipeline = make_fitted_pipeline(small_problem, encoder=encoder)
        path = save_model(tmp_path / "ngram.npz", pipeline)
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            reloaded.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_quantile_quantizer_roundtrip(self, small_problem, tmp_path):
        encoder = RecordEncoder(
            dimension=256, num_levels=8, quantizer="quantile", tie_break="positive", seed=3
        )
        pipeline = make_fitted_pipeline(small_problem, encoder=encoder)
        path = save_model(tmp_path / "quantile.npz", pipeline)
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            reloaded.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_metadata_recorded(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(
            tmp_path / "meta.npz",
            pipeline,
            strategy_name="baseline",
            extra_metadata={"note": "unit-test"},
        )
        # The loaded pipeline reuses the stored dimension / class count.
        reloaded = load_model(path)
        assert reloaded.encoder.dimension == 512
        assert reloaded.classifier.num_classes_ == small_problem["num_classes"]


def _rewrite_metadata(path, destination, **updates):
    """Copy a saved model, mutating its metadata block."""
    import json

    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    metadata = json.loads(bytes(arrays["metadata_json"].tobytes()).decode("utf-8"))
    metadata.update(updates)
    arrays["metadata_json"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(destination, **arrays)
    return destination


class TestMetadataVerification:
    def test_package_version_recorded(self, small_problem, tmp_path):
        from repro import __version__

        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "m.npz", pipeline)
        assert read_model_metadata(path)["package_version"] == __version__

    def test_read_model_metadata_cheap_fields(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "m.npz", pipeline, strategy_name="baseline")
        metadata = read_model_metadata(path)
        assert metadata["strategy"] == "baseline"
        assert metadata["dimension"] == 512
        assert metadata["encoder_kind"] == "record"

    def test_incompatible_package_version_rejected(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "m.npz", pipeline)
        bad = _rewrite_metadata(path, tmp_path / "bad.npz", package_version="99.0.0")
        with pytest.raises(ValueError, match="99.0.0"):
            load_model(bad)
        with pytest.raises(ValueError, match="99.0.0"):
            read_model_metadata(bad)

    def test_legacy_archive_without_package_version_loads(
        self, small_problem, tmp_path
    ):
        import json

        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "m.npz", pipeline)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        metadata = json.loads(bytes(arrays["metadata_json"].tobytes()).decode("utf-8"))
        del metadata["package_version"]
        arrays["metadata_json"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        reloaded = load_model(legacy)
        np.testing.assert_array_equal(
            reloaded.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_unknown_encoder_kind_rejected(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "m.npz", pipeline)
        bad = _rewrite_metadata(path, tmp_path / "bad_enc.npz", encoder_kind="fourier")
        with pytest.raises(ValueError, match="fourier"):
            load_model(bad)


class TestSaveLoadErrors:
    def test_save_unfitted_rejected(self, tmp_path):
        pipeline = HDCPipeline(RecordEncoder(dimension=128, seed=0), BaselineHDC(seed=0))
        with pytest.raises(ValueError):
            save_model(tmp_path / "x.npz", pipeline)

    def test_loaded_model_is_inference_only(self, small_problem, tmp_path):
        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "frozen.npz", pipeline)
        reloaded = load_model(path)
        with pytest.raises(RuntimeError):
            reloaded.classifier.fit(
                np.ones((4, 512), dtype=np.int8), np.array([0, 1, 2, 3])
            )

    def test_bad_format_version(self, small_problem, tmp_path):
        import json

        pipeline = make_fitted_pipeline(small_problem)
        path = save_model(tmp_path / "versioned.npz", pipeline)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        metadata = json.loads(bytes(arrays["metadata_json"].tobytes()).decode("utf-8"))
        metadata["format_version"] = 999
        arrays["metadata_json"] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
        bad_path = tmp_path / "bad.npz"
        np.savez_compressed(bad_path, **arrays)
        with pytest.raises(ValueError):
            load_model(bad_path)


class TestEnsembleRoundtrip:
    def fit_ensemble_pipeline(self, small_problem):
        from repro.classifiers.multimodel import MultiModelHDC

        return make_fitted_pipeline(
            small_problem,
            classifier=MultiModelHDC(models_per_class=4, iterations=1, seed=0),
        )

    def test_model_bank_and_predictions_survive_reload(self, small_problem, tmp_path):
        pipeline = self.fit_ensemble_pipeline(small_problem)
        path = save_model(tmp_path / "ens.npz", pipeline, strategy_name="multimodel")
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            reloaded.classifier.model_hypervectors_,
            pipeline.classifier.model_hypervectors_,
        )
        np.testing.assert_array_equal(
            reloaded.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )
        # The restored classifier keeps the packed max-over-ensemble rule.
        assert reloaded.classifier.supports_packed_scoring()

    def test_models_per_class_metadata(self, small_problem, tmp_path):
        pipeline = self.fit_ensemble_pipeline(small_problem)
        path = save_model(tmp_path / "ens.npz", pipeline, strategy_name="multimodel")
        assert read_model_metadata(path)["models_per_class"] == 4
        single = make_fitted_pipeline(small_problem)
        single_path = save_model(tmp_path / "one.npz", single, strategy_name="baseline")
        assert read_model_metadata(single_path)["models_per_class"] is None

    def test_ensemble_archives_use_the_gated_format_version(
        self, small_problem, tmp_path
    ):
        """Bank-carrying archives are stamped v2 so pre-ensemble readers
        reject them outright instead of silently serving majority vectors;
        plain models keep v1 and stay readable by older builds."""
        from repro.io import ENSEMBLE_FORMAT_VERSION, FORMAT_VERSION

        ensemble_path = save_model(
            tmp_path / "ens.npz",
            self.fit_ensemble_pipeline(small_problem),
            strategy_name="multimodel",
        )
        assert (
            read_model_metadata(ensemble_path)["format_version"]
            == ENSEMBLE_FORMAT_VERSION
        )
        plain_path = save_model(
            tmp_path / "one.npz",
            make_fitted_pipeline(small_problem),
            strategy_name="baseline",
        )
        assert read_model_metadata(plain_path)["format_version"] == FORMAT_VERSION
        # Both versions load in this build.
        load_model(ensemble_path)
        load_model(plain_path)

    def test_loaded_ensemble_is_inference_only(self, small_problem, tmp_path):
        pipeline = self.fit_ensemble_pipeline(small_problem)
        path = save_model(tmp_path / "ens.npz", pipeline, strategy_name="multimodel")
        reloaded = load_model(path)
        with pytest.raises(RuntimeError, match="inference-only"):
            reloaded.classifier.fit(
                np.ones((4, 512), dtype=np.int8), np.array([0, 1, 0, 1])
            )
