"""Unit tests for repro.hdc.itemmemory."""

import numpy as np
import pytest

from repro.hdc.hypervector import hamming_distance
from repro.hdc.itemmemory import LevelItemMemory, RandomItemMemory


class TestRandomItemMemory:
    def test_shape_and_len(self):
        memory = RandomItemMemory(12, 256, seed=0)
        assert len(memory) == 12
        assert memory.vectors.shape == (12, 256)

    def test_getitem_and_lookup(self):
        memory = RandomItemMemory(5, 64, seed=1)
        np.testing.assert_array_equal(memory[2], memory.vectors[2])
        looked_up = memory.lookup(np.array([0, 2, 4]))
        assert looked_up.shape == (3, 64)

    def test_lookup_bounds(self):
        memory = RandomItemMemory(5, 64, seed=2)
        with pytest.raises(IndexError):
            memory.lookup(np.array([5]))
        with pytest.raises(IndexError):
            memory.lookup(np.array([-1]))

    def test_orthogonality_of_positions(self):
        memory = RandomItemMemory(10, 10_000, seed=3)
        for i in range(0, 10, 3):
            for j in range(1, 10, 3):
                if i != j:
                    assert 0.45 < hamming_distance(memory[i], memory[j]) < 0.55

    def test_reproducible(self):
        np.testing.assert_array_equal(
            RandomItemMemory(4, 128, seed=9).vectors,
            RandomItemMemory(4, 128, seed=9).vectors,
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RandomItemMemory(0, 10)


class TestLevelItemMemory:
    def test_shape(self):
        memory = LevelItemMemory(8, 512, seed=0)
        assert len(memory) == 8
        assert memory.vectors.shape == (8, 512)

    def test_adjacent_levels_are_similar(self):
        memory = LevelItemMemory(16, 8192, seed=1)
        adjacent = hamming_distance(memory[0], memory[1])
        distant = hamming_distance(memory[0], memory[15])
        assert adjacent < distant

    def test_extreme_levels_half_distance(self):
        memory = LevelItemMemory(16, 8192, seed=2)
        distance = hamming_distance(memory[0], memory[15])
        assert 0.45 < distance <= 0.5

    def test_distance_proportional_to_level_gap(self):
        memory = LevelItemMemory(11, 10_000, seed=3)
        for level in range(1, 11):
            expected = memory.expected_distance(0, level)
            measured = hamming_distance(memory[0], memory[level])
            assert measured == pytest.approx(expected, abs=0.02)

    def test_single_level_degenerate(self):
        memory = LevelItemMemory(1, 128, seed=4)
        assert memory.expected_distance(0, 0) == 0.0
        assert memory.vectors.shape == (1, 128)

    def test_lookup_bounds(self):
        memory = LevelItemMemory(4, 64, seed=5)
        with pytest.raises(IndexError):
            memory.lookup(np.array([4]))

    def test_reproducible(self):
        np.testing.assert_array_equal(
            LevelItemMemory(6, 256, seed=7).vectors,
            LevelItemMemory(6, 256, seed=7).vectors,
        )
