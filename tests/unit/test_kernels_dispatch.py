"""Unit tests for the kernel registry, backend selection, and dtype policy."""

import numpy as np
import pytest

from repro.kernels import dispatch


class TestRegistry:
    def test_get_known_kernel(self):
        assert callable(dispatch.get_kernel("packed.bit_differences"))
        assert callable(dispatch.get_kernel("encode.lut_accumulate"))
        assert callable(dispatch.get_kernel("linear.matmul"))

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no kernel registered"):
            dispatch.get_kernel("no.such.kernel")

    def test_unknown_backend_falls_back_to_numpy(self):
        numpy_impl = dispatch.get_kernel("linear.matmul", backend="numpy")

        @dispatch.register_kernel("test.only_numpy")
        def only_numpy():
            return "numpy"

        assert dispatch.get_kernel("test.only_numpy", backend="threaded") is only_numpy
        assert dispatch.get_kernel("linear.matmul", backend="numpy") is numpy_impl

    def test_register_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            dispatch.register_kernel("test.bad", backend="cuda")

    def test_list_kernels_names_backends(self):
        listing = dispatch.list_kernels()
        assert "numpy" in listing["packed.bit_differences"]
        assert "threaded" in listing["packed.bit_differences"]


class TestBackendSelection:
    def test_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        dispatch.set_backend(None)
        assert dispatch.active_backend() == "numpy"

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "threaded")
        dispatch.set_backend(None)
        assert dispatch.active_backend() == "threaded"
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")

    def test_use_backend_context(self):
        with dispatch.use_backend("threaded"):
            assert dispatch.active_backend() == "threaded"
        assert dispatch.active_backend() == "numpy"

    def test_set_backend_validates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            dispatch.set_backend("gpu")

    def test_num_threads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        assert dispatch.num_threads() == 3
        monkeypatch.delenv("REPRO_KERNEL_THREADS")
        assert dispatch.num_threads() >= 1


class TestFloatDtypePolicy:
    def test_default_is_float32(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLOAT_DTYPE", raising=False)
        dispatch.set_float_dtype(None)
        assert dispatch.float_dtype() == np.dtype(np.float32)

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLOAT_DTYPE", "float64")
        dispatch.set_float_dtype(None)
        assert dispatch.float_dtype() == np.dtype(np.float64)
        monkeypatch.delenv("REPRO_FLOAT_DTYPE")

    def test_use_float_dtype_context(self):
        with dispatch.use_float_dtype(np.float64):
            assert dispatch.float_dtype() == np.dtype(np.float64)
        assert dispatch.float_dtype() == np.dtype(np.float32)

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ValueError, match="floating dtype"):
            dispatch.set_float_dtype(np.int32)


class TestEnvironmentValidation:
    def test_unknown_env_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "thread")  # typo of "threaded"
        dispatch.set_backend(None)
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            dispatch.active_backend()
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")

    def test_non_integer_thread_count_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "four")
        with pytest.raises(ValueError, match="REPRO_KERNEL_THREADS"):
            dispatch.num_threads()
        monkeypatch.delenv("REPRO_KERNEL_THREADS")

    def test_run_sharded_matches_direct(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        data = np.arange(20.0).reshape(10, 2)
        result = dispatch.run_sharded(lambda start, stop: data[start:stop] * 2, 10)
        np.testing.assert_array_equal(result, data * 2)
        monkeypatch.delenv("REPRO_KERNEL_THREADS")


class TestMultiprocessBackend:
    def test_backend_is_registered_for_bit_differences(self):
        kernels = dispatch.list_kernels()
        assert "multiprocess" in kernels["packed.bit_differences"]
        assert "multiprocess" in dispatch.available_backends()

    def test_num_procs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "3")
        assert dispatch.num_procs() == 3
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "zero")
        with pytest.raises(ValueError, match="REPRO_KERNEL_PROCS"):
            dispatch.num_procs()

    def test_run_sharded_processes_small_input_runs_inline(self, monkeypatch):
        # Below two rows per worker the direct call is used: no pool, no
        # pickling, bit-identical output.
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "4")
        data = np.arange(6.0).reshape(3, 2)
        result = dispatch.run_sharded_processes(_double_rows, data)
        np.testing.assert_array_equal(result, data * 2)

    def test_run_sharded_processes_matches_direct(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "2")
        dispatch.shutdown_process_pool()  # force a 2-worker pool
        try:
            data = np.arange(40.0).reshape(20, 2)
            result = dispatch.run_sharded_processes(_double_rows, data)
            np.testing.assert_array_equal(result, data * 2)
        finally:
            dispatch.shutdown_process_pool()

    def test_multiprocess_bit_differences_parity(self, monkeypatch):
        from repro.kernels import packed

        rng = np.random.default_rng(11)
        a = rng.integers(0, 2**63, size=(24, 4), dtype=np.uint64)
        b = rng.integers(0, 2**63, size=(7, 4), dtype=np.uint64)
        expected = packed.bit_differences_words(a, b)
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "2")
        dispatch.shutdown_process_pool()
        try:
            with dispatch.use_backend("multiprocess"):
                np.testing.assert_array_equal(
                    packed.bit_differences_words(a, b), expected
                )
        finally:
            dispatch.shutdown_process_pool()


def _double_rows(rows):
    return rows * 2


class TestBrokenPoolRecovery:
    def test_killed_pool_worker_degrades_to_direct_call(self, monkeypatch):
        # A worker dying mid-task breaks the whole ProcessPoolExecutor; the
        # backend must answer this call on the direct path, drop the broken
        # pool, and build a fresh one next time — never error out.
        monkeypatch.setenv("REPRO_KERNEL_PROCS", "2")
        dispatch.shutdown_process_pool()
        try:
            executor = dispatch._process_executor()
            data = np.arange(40.0).reshape(20, 2)
            np.testing.assert_array_equal(
                dispatch.run_sharded_processes(_double_rows, data), data * 2
            )
            for process in executor._processes.values():
                process.kill()
            for process in executor._processes.values():
                process.join(timeout=10)
            np.testing.assert_array_equal(
                dispatch.run_sharded_processes(_double_rows, data), data * 2
            )
            # The broken pool was discarded: the next call rebuilds one.
            assert dispatch._process_executor() is not executor
            np.testing.assert_array_equal(
                dispatch.run_sharded_processes(_double_rows, data), data * 2
            )
        finally:
            dispatch.shutdown_process_pool()


class TestKernelProfiling:
    def test_disabled_by_default_and_unwrapped(self):
        assert dispatch.kernel_profiling_enabled() is False
        kernel = dispatch.get_kernel("linear.matmul")
        # Off the profiling path, get_kernel returns the raw implementation.
        assert not hasattr(kernel, "__wrapped__")

    def test_profiled_calls_are_counted_and_timed(self):
        dispatch.reset_kernel_profile()
        a = np.ones((4, 3), dtype=np.float32)
        b = np.ones((3, 2), dtype=np.float32)
        with dispatch.profile_kernels():
            kernel = dispatch.get_kernel("linear.matmul")
            kernel(a, b)
            kernel(a, b)
        snapshot = dispatch.kernel_profile_snapshot()
        entry = snapshot["linear.matmul[numpy]"]
        assert entry["calls"] == 2
        assert entry["total_ms"] >= 0.0
        assert entry["mean_ms"] == pytest.approx(entry["total_ms"] / 2)
        assert entry["kernel"] == "linear.matmul"
        assert entry["backend"] == "numpy"

    def test_wrapper_is_stable_across_resolutions(self):
        with dispatch.profile_kernels():
            first = dispatch.get_kernel("linear.matmul")
            second = dispatch.get_kernel("linear.matmul")
        assert first is second

    def test_context_restores_prior_state(self):
        assert dispatch.kernel_profiling_enabled() is False
        with dispatch.profile_kernels():
            assert dispatch.kernel_profiling_enabled() is True
            with dispatch.profile_kernels():
                pass
            # The inner exit restores the outer enabled state, not False.
            assert dispatch.kernel_profiling_enabled() is True
        assert dispatch.kernel_profiling_enabled() is False

    def test_reset_clears_counters(self):
        a = np.ones((2, 2), dtype=np.float32)
        with dispatch.profile_kernels():
            dispatch.get_kernel("linear.matmul")(a, a)
        dispatch.reset_kernel_profile()
        assert dispatch.kernel_profile_snapshot() == {}

    def test_failing_kernel_still_counted(self):
        dispatch.reset_kernel_profile()
        with dispatch.profile_kernels():
            kernel = dispatch.get_kernel("linear.matmul")
            with pytest.raises(ValueError):
                kernel(np.ones((2, 3)), np.ones((5, 2)))  # shape mismatch
        snapshot = dispatch.kernel_profile_snapshot()
        assert snapshot["linear.matmul[numpy]"]["calls"] == 1
