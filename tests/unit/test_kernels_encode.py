"""Unit tests for the fused encode kernels and their encoder integration."""

import numpy as np
import pytest

from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.kernels.dispatch import use_backend
from repro.kernels.encode import NGramAccumulator, RecordAccumulator, build_accumulator
from repro.kernels.packed import pack_bipolar


@pytest.fixture(scope="module")
def features():
    return np.random.default_rng(3).normal(size=(40, 12))


def reference_record_accumulate(encoder, levels):
    """The seed implementation: one gather + multiply per feature."""
    positions = encoder.position_memory.vectors.astype(np.int32)
    level_vectors = encoder.level_memory.vectors.astype(np.int32)
    accumulated = np.zeros((levels.shape[0], encoder.dimension), dtype=np.int32)
    for feature_index in range(levels.shape[1]):
        accumulated += positions[feature_index] * level_vectors[levels[:, feature_index]]
    return accumulated


def reference_ngram_accumulate(encoder, levels):
    """The seed implementation: a Python loop over binding windows."""
    level_vectors = encoder.level_memory.vectors.astype(np.int32)
    permuted = [np.roll(level_vectors, o, axis=1) for o in range(encoder.ngram)]
    accumulated = np.zeros((levels.shape[0], encoder.dimension), dtype=np.int32)
    for start in range(levels.shape[1] - encoder.ngram + 1):
        gram = permuted[0][levels[:, start]].copy()
        for offset in range(1, encoder.ngram):
            gram *= permuted[offset][levels[:, start + offset]]
        accumulated += gram
    return accumulated


class TestRecordAccumulator:
    def test_fused_lut_matches_seed_loop(self, features):
        encoder = RecordEncoder(dimension=256, num_levels=8, seed=0).fit(features)
        levels = encoder._quantizer.transform(features)
        np.testing.assert_array_equal(
            encoder._accumulate(levels), reference_record_accumulate(encoder, levels)
        )

    def test_factored_fallback_matches_fused(self, features):
        encoder = RecordEncoder(dimension=256, num_levels=8, seed=0).fit(features)
        levels = encoder._quantizer.transform(features)
        fused = RecordAccumulator(
            encoder.position_memory.vectors, encoder.level_memory.vectors
        )
        factored = RecordAccumulator(
            encoder.position_memory.vectors,
            encoder.level_memory.vectors,
            lut_budget_bytes=1,
        )
        assert fused.table_bytes > factored.table_bytes
        np.testing.assert_array_equal(fused(levels), factored(levels))

    def test_threaded_backend_matches_numpy(self, features):
        encoder = RecordEncoder(dimension=256, num_levels=8, seed=1).fit(features)
        levels = encoder._quantizer.transform(features)
        expected = encoder._accumulate(levels)
        with use_backend("threaded"):
            np.testing.assert_array_equal(encoder._accumulate(levels), expected)


class TestNGramRegression:
    """Satellite: the vectorised rolled-window kernel is pinned to the seed loop."""

    @pytest.mark.parametrize("ngram", [1, 2, 3, 5])
    def test_vectorised_matches_seed_loop(self, features, ngram):
        encoder = NGramEncoder(dimension=200, num_levels=8, ngram=ngram, seed=2)
        encoder.fit(features)
        levels = encoder._quantizer.transform(features)
        np.testing.assert_array_equal(
            encoder._accumulate(levels), reference_ngram_accumulate(encoder, levels)
        )

    def test_encode_identical_to_seed_composition(self, features):
        """Full encode (accumulate + sign, random ties) is reproducible from
        the reference accumulation and an identically seeded RNG."""
        from repro.hdc.hypervector import sign_with_ties

        encoder = NGramEncoder(dimension=200, num_levels=8, ngram=3, seed=4)
        encoder.fit(features)
        levels = encoder._quantizer.transform(features)
        reference_rng = np.random.default_rng(99)
        encoder._rng = np.random.default_rng(99)  # align tie-break streams
        expected = sign_with_ties(
            reference_ngram_accumulate(encoder, levels),
            rng=reference_rng,
            tie_break="random",
        )
        np.testing.assert_array_equal(encoder.encode(features), expected)

    def test_window_blocks_do_not_change_result(self, features, monkeypatch):
        """Force a tiny scratch budget so multiple window blocks are exercised."""
        import repro.kernels.encode as encode_module

        encoder = NGramEncoder(dimension=64, num_levels=8, ngram=3, seed=5)
        encoder.fit(features)
        levels = encoder._quantizer.transform(features)
        expected = encoder._accumulate(levels)
        monkeypatch.setattr(encode_module, "_SCRATCH_BYTES", 1)
        blocked = NGramAccumulator(encoder.level_memory.vectors, encoder.ngram)
        np.testing.assert_array_equal(blocked(levels), expected)

    def test_too_few_features_raises(self):
        accumulator = NGramAccumulator(
            np.ones((4, 32), dtype=np.int8), ngram=5
        )
        with pytest.raises(ValueError, match="exceeds the number of features"):
            accumulator(np.zeros((2, 3), dtype=np.int64))


class TestEncoderIntegration:
    def test_build_accumulator_dispatches_on_type(self, features):
        record = RecordEncoder(dimension=64, num_levels=4, seed=0).fit(features)
        ngram = NGramEncoder(dimension=64, num_levels=4, ngram=2, seed=0).fit(features)
        assert isinstance(build_accumulator(record), RecordAccumulator)
        assert isinstance(build_accumulator(ngram), NGramAccumulator)
        assert build_accumulator(object()) is None

    def test_accumulator_rebuilt_after_refit(self, features):
        encoder = RecordEncoder(dimension=64, num_levels=4, seed=0).fit(features)
        first = encoder._get_accumulator()
        assert encoder._get_accumulator() is first  # cached between calls
        encoder.fit(features)
        assert encoder._get_accumulator() is not first

    def test_accumulator_rebuilt_on_budget_change(self, features):
        encoder = RecordEncoder(dimension=64, num_levels=4, seed=0).fit(features)
        fused = encoder._get_accumulator()
        encoder.lut_budget_bytes = 1
        factored = encoder._get_accumulator()
        assert factored is not fused
        assert fused._flat_lut is not None
        assert factored._flat_lut is None

    @pytest.mark.parametrize("tie_break", ["positive", "random"])
    def test_encode_packed_bit_identical_to_dense_encode(self, features, tie_break):
        dense_encoder = RecordEncoder(
            dimension=200, num_levels=4, tie_break=tie_break, seed=8
        ).fit(features)
        packed_encoder = RecordEncoder(
            dimension=200, num_levels=4, tie_break=tie_break, seed=8
        ).fit(features)
        expected = pack_bipolar(dense_encoder.encode(features))
        packed = packed_encoder.encode_packed(features)
        np.testing.assert_array_equal(packed.words, expected.words)
        assert packed.dimension == expected.dimension

    def test_accumulate_public_surface(self, features):
        encoder = RecordEncoder(dimension=64, num_levels=4, seed=0).fit(features)
        raw = encoder.accumulate(features)
        assert raw.shape == (features.shape[0], 64)
        assert raw.dtype == np.int32
