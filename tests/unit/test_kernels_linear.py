"""Unit tests for the linear kernels and the float dtype policy in training."""

import numpy as np
import pytest

from repro.core.bnn_model import BNNTrainer, SingleLayerBNN
from repro.core.configs import DEFAULT_CONFIG
from repro.kernels.dispatch import use_backend, use_float_dtype
from repro.kernels.linear import as_float, matmul, sign_bipolar
from repro.nn.losses import cross_entropy_from_logits, one_hot, softmax


class TestAsFloat:
    def test_integer_input_casts_to_policy(self):
        assert as_float(np.ones(3, dtype=np.int8)).dtype == np.float32

    def test_float_input_preserved(self):
        for dtype in (np.float32, np.float64):
            array = np.ones(3, dtype=dtype)
            result = as_float(array)
            assert result.dtype == dtype
            assert result is array  # no copy either

    def test_policy_override(self):
        with use_float_dtype(np.float64):
            assert as_float(np.ones(3, dtype=np.int8)).dtype == np.float64


class TestSignBipolar:
    def test_values_and_zero_mapping(self):
        values = np.array([-0.5, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(sign_bipolar(values), [-1.0, 1.0, 1.0])

    def test_dtype_follows_input(self):
        assert sign_bipolar(np.zeros(2, dtype=np.float64)).dtype == np.float64
        assert sign_bipolar(np.zeros(2, dtype=np.float32)).dtype == np.float32


class TestMatmul:
    def test_matches_operator(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 4)).astype(np.float32)
        b = rng.normal(size=(4, 3)).astype(np.float32)
        np.testing.assert_array_equal(matmul(a, b), a @ b)

    def test_threaded_backend_matches(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(64, 16))
        b = rng.normal(size=(16, 8))
        expected = a @ b
        with use_backend("threaded"):
            np.testing.assert_allclose(matmul(a, b), expected, rtol=1e-12)


class TestLossDtypes:
    def test_softmax_preserves_float32(self):
        assert softmax(np.zeros((2, 3), dtype=np.float32)).dtype == np.float32

    def test_one_hot_default_policy_dtype(self):
        assert one_hot(np.array([0, 1]), 2).dtype == np.float32

    def test_cross_entropy_gradient_follows_logits(self):
        logits = np.random.default_rng(2).normal(size=(4, 3)).astype(np.float32)
        loss, grad = cross_entropy_from_logits(logits, np.array([0, 1, 2, 0]))
        assert isinstance(loss, float)
        assert grad.dtype == np.float32


class TestNoSilentUpcastsDuringTraining:
    """Satellite: a full training step stays in the policy dtype end to end."""

    @pytest.mark.parametrize("policy", [np.float32, np.float64])
    def test_training_step_stays_in_policy_dtype(self, policy):
        with use_float_dtype(policy):
            rng = np.random.default_rng(3)
            hypervectors = (
                rng.integers(0, 2, size=(48, 128)).astype(np.int8) * 2 - 1
            )
            labels = rng.integers(0, 4, size=48)
            model = SingleLayerBNN(
                dimension=128, num_classes=4, dropout_rate=0.3, seed=0
            )
            config = DEFAULT_CONFIG.with_overrides(
                epochs=1, batch_size=16, validation_fraction=0.0
            )
            trainer = BNNTrainer(model, config, seed=0)

            # Parameters are initialised in the policy dtype.
            assert model.linear.weight.value.dtype == policy

            # Every intermediate of one forward/backward stays in policy dtype.
            inputs = as_float(hypervectors)
            assert inputs.dtype == policy
            logits = model.forward(inputs)
            assert logits.dtype == policy
            loss, grad_logits = cross_entropy_from_logits(logits, labels)
            assert grad_logits.dtype == policy
            model.zero_grad()
            grad_inputs = model.backward(grad_logits)
            assert grad_inputs.dtype == policy
            assert model.linear.weight.grad.dtype == policy

            # A full optimiser epoch leaves weights and Adam state in policy dtype.
            trainer.train(hypervectors, labels)
            assert model.linear.weight.value.dtype == policy
            for moment_store in (
                trainer.optimizer._first_moment,
                trainer.optimizer._second_moment,
            ):
                for moment in moment_store.values():
                    assert moment.dtype == policy

    def test_float64_hypervectors_are_not_downcast(self):
        """Pre-cast float64 inputs keep their precision (no silent down-cast)."""
        inputs = np.ones((4, 16), dtype=np.float64)
        model = SingleLayerBNN(dimension=16, num_classes=2, dropout_rate=0.0, seed=0)
        # float64 inputs against float32 weights promote to float64 — the
        # caller's precision is never reduced behind their back.
        assert model.forward(inputs).dtype == np.float64
