"""Unit tests for the packed kernels and the ``repro.hdc.packing`` shim."""

import warnings

import numpy as np
import pytest

from repro.hdc.hypervector import dot_similarity, random_hypervectors, sign_with_ties
from repro.kernels.dispatch import use_backend
from repro.kernels.packed import (
    PackedHypervectors,
    bit_differences_words,
    pack_bipolar,
    packed_dot_scores,
    sign_fuse_bits,
    try_pack_bipolar,
)


class TestTryPackBipolar:
    def test_matches_pack_bipolar_on_bipolar_input(self):
        vectors = random_hypervectors(5, 130, seed=40)
        packed = try_pack_bipolar(vectors)
        np.testing.assert_array_equal(packed.words, pack_bipolar(vectors).words)
        assert packed.dimension == 130

    def test_returns_none_instead_of_raising(self):
        assert try_pack_bipolar(np.zeros((2, 8))) is None
        assert try_pack_bipolar(np.full((2, 8), 3)) is None
        with pytest.raises(ValueError):
            pack_bipolar(np.zeros((2, 8)))

    def test_accepts_float_bipolar(self):
        vectors = random_hypervectors(2, 64, seed=41).astype(np.float32)
        packed = try_pack_bipolar(vectors)
        np.testing.assert_array_equal(
            packed.words, pack_bipolar(vectors.astype(np.int8)).words
        )


class TestPackedDotScores:
    def test_matches_dense_dot_similarity(self):
        queries = random_hypervectors(16, 300, seed=0)
        references = random_hypervectors(5, 300, seed=1)
        packed_scores = packed_dot_scores(pack_bipolar(queries), pack_bipolar(references))
        np.testing.assert_array_equal(
            packed_scores, dot_similarity(queries, references)
        )

    def test_dot_scores_method(self):
        queries = random_hypervectors(4, 100, seed=2)
        packed = pack_bipolar(queries)
        np.testing.assert_array_equal(
            packed.dot_scores(packed), dot_similarity(queries, queries)
        )

    def test_word_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="word-count mismatch"):
            bit_differences_words(
                np.zeros((2, 2), dtype=np.uint64), np.zeros((2, 3), dtype=np.uint64)
            )


class TestThreadedBackend:
    def test_bit_differences_threaded_matches_numpy(self):
        a = random_hypervectors(33, 500, seed=3)
        b = random_hypervectors(7, 500, seed=4)
        packed_a, packed_b = pack_bipolar(a), pack_bipolar(b)
        expected = packed_a.bit_differences(packed_b)
        with use_backend("threaded"):
            np.testing.assert_array_equal(packed_a.bit_differences(packed_b), expected)


class TestSignFuseBits:
    def test_positive_tie_break_matches_sign_with_ties(self):
        raw = np.array([[3, 0, -2, 0, 5], [-1, -1, 0, 4, 0]], dtype=np.int32)
        bits = sign_fuse_bits(raw, tie_break="positive")
        dense = sign_with_ties(raw, tie_break="positive")
        np.testing.assert_array_equal(bits, dense > 0)

    def test_random_tie_break_consumes_identical_rng_stream(self):
        rng_dense = np.random.default_rng(77)
        rng_packed = np.random.default_rng(77)
        raw = np.random.default_rng(5).integers(-2, 3, size=(20, 64)).astype(np.int32)
        dense = sign_with_ties(raw, rng=rng_dense, tie_break="random")
        bits = sign_fuse_bits(raw, tie_break="random", rng=rng_packed)
        np.testing.assert_array_equal(bits, dense > 0)
        # Both paths must leave the generator in the same state.
        assert rng_dense.integers(0, 2**31) == rng_packed.integers(0, 2**31)

    def test_random_tie_break_requires_rng(self):
        with pytest.raises(ValueError, match="requires an rng"):
            sign_fuse_bits(np.zeros((1, 4), dtype=np.int32), tie_break="random")

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError, match="tie_break"):
            sign_fuse_bits(np.ones((1, 4), dtype=np.int32), tie_break="coin")


class TestPackingShim:
    def test_shim_warns_once_at_import(self):
        """Importing the shim emits exactly one module-level DeprecationWarning."""
        import importlib
        import sys

        sys.modules.pop("repro.hdc.packing", None)
        with pytest.warns(DeprecationWarning, match="repro.kernels") as caught:
            importlib.import_module("repro.hdc.packing")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_shim_objects_are_kernel_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.hdc import packing as shim

        assert shim.PackedHypervectors is PackedHypervectors
        assert shim.pack_bipolar is pack_bipolar

    def test_every_public_kernel_name_reexported_identically(self):
        from repro.kernels import packed as kernel_module

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.hdc import packing as shim

        for name in kernel_module.__all__:
            assert getattr(shim, name) is getattr(kernel_module, name), name

    def test_attribute_access_does_not_warn(self):
        """The deprecation fires at import time, not once per attribute access."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.hdc import packing as shim

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            shim.pack_bits
            shim.bit_differences_words
            shim.sign_fuse_bits

    def test_shim_unknown_attribute_raises(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.hdc import packing as shim

        with pytest.raises(AttributeError):
            shim.definitely_not_a_kernel
