"""Unit tests for the packed training kernels (``repro.kernels.train``)."""

import numpy as np
import pytest

from repro.hdc.hypervector import dot_similarity, random_hypervectors
from repro.kernels.dispatch import run_sharded_sum, use_backend
from repro.kernels.packed import pack_bipolar
from repro.kernels.train import (
    PackedTrainingSet,
    apply_class_updates,
    bundle_packed,
    flip_fraction_packed,
    score_epoch,
)


class TestPackedTrainingSet:
    def test_from_dense_packs_and_keeps_int8_samples(self):
        vectors = random_hypervectors(6, 100, seed=0)
        train_set = PackedTrainingSet.from_dense(vectors)
        assert train_set.num_samples == 6
        assert train_set.dimension == 100
        assert train_set.samples.dtype == np.int8
        np.testing.assert_array_equal(
            train_set.packed.words, pack_bipolar(vectors).words
        )

    def test_accepts_float_bipolar_input(self):
        vectors = random_hypervectors(3, 70, seed=1).astype(np.float64)
        train_set = PackedTrainingSet.from_dense(vectors)
        np.testing.assert_array_equal(train_set.samples, vectors.astype(np.int8))

    def test_try_from_dense_rejects_non_bipolar(self):
        assert PackedTrainingSet.try_from_dense(np.zeros((2, 8))) is None
        assert PackedTrainingSet.try_from_dense(np.full((2, 8), 2)) is None

    def test_from_dense_raises_on_non_bipolar(self):
        with pytest.raises(ValueError, match="bipolar|\\{\\+1, -1\\}"):
            PackedTrainingSet.from_dense(np.zeros((2, 8)))

    def test_constructor_rejects_shape_mismatch(self):
        vectors = random_hypervectors(4, 64, seed=2)
        packed = pack_bipolar(vectors)
        with pytest.raises(ValueError, match="does not match"):
            PackedTrainingSet(packed, vectors[:3])


class TestBundlePacked:
    def test_matches_dense_add_at(self, rng):
        vectors = random_hypervectors(50, 200, seed=3)
        labels = rng.integers(0, 5, size=50)
        expected = np.zeros((5, 200), dtype=np.int64)
        np.add.at(expected, labels, vectors.astype(np.int64))
        result = bundle_packed(pack_bipolar(vectors), labels, 5)
        assert result.dtype == np.int64
        np.testing.assert_array_equal(result, expected)

    def test_absent_class_gets_zero_row(self):
        vectors = random_hypervectors(6, 64, seed=4)
        labels = np.array([0, 0, 3, 3, 3, 0])  # classes 1 and 2 unseen
        result = bundle_packed(pack_bipolar(vectors), labels, 4)
        np.testing.assert_array_equal(result[1], 0)
        np.testing.assert_array_equal(result[2], 0)
        expected = np.zeros((4, 64), dtype=np.int64)
        np.add.at(expected, labels, vectors.astype(np.int64))
        np.testing.assert_array_equal(result, expected)

    def test_threaded_backend_is_bit_identical(self, rng):
        vectors = random_hypervectors(80, 130, seed=5)
        labels = rng.integers(0, 7, size=80)
        packed = pack_bipolar(vectors)
        expected = bundle_packed(packed, labels, 7)
        with use_backend("threaded"):
            np.testing.assert_array_equal(bundle_packed(packed, labels, 7), expected)

    def test_label_validation(self):
        packed = pack_bipolar(random_hypervectors(4, 64, seed=6))
        with pytest.raises(ValueError, match="does not match"):
            bundle_packed(packed, np.array([0, 1]), 2)
        with pytest.raises(ValueError, match="lie in"):
            bundle_packed(packed, np.array([0, 1, 2, 5]), 3)


class TestScoreEpoch:
    def test_matches_dense_scores_and_argmax(self):
        samples = random_hypervectors(30, 150, seed=7)
        classes = random_hypervectors(6, 150, seed=8)
        scores, predicted = score_epoch(pack_bipolar(samples), pack_bipolar(classes))
        dense = dot_similarity(samples, classes)
        np.testing.assert_array_equal(scores, dense)
        np.testing.assert_array_equal(predicted, np.argmax(dense, axis=1))


class TestApplyClassUpdates:
    def test_matches_ordered_sequential_application(self, rng):
        samples = random_hypervectors(20, 96, seed=9)
        class_indices = rng.integers(0, 3, size=40)
        sample_rows = rng.integers(0, 20, size=40)
        coefficients = rng.normal(size=40)
        expected = rng.normal(size=(3, 96))
        result = expected.copy()
        for position in range(40):
            expected[class_indices[position]] += (
                coefficients[position] * samples[sample_rows[position]].astype(np.float64)
            )
        apply_class_updates(result, class_indices, coefficients, samples, sample_rows)
        # Bit-identical, not just close: the kernel must reproduce the exact
        # left-to-right float accumulation order.
        np.testing.assert_array_equal(result, expected)

    def test_length_mismatch_raises(self):
        samples = random_hypervectors(4, 64, seed=10)
        with pytest.raises(ValueError, match="equal length"):
            apply_class_updates(
                np.zeros((2, 64)),
                np.array([0, 1]),
                np.array([1.0]),
                samples,
                np.array([0, 1]),
            )


class TestFlipFractionPacked:
    def test_matches_dense_mean_exactly(self):
        a = random_hypervectors(5, 100, seed=11)
        b = random_hypervectors(5, 100, seed=12)
        expected = float(np.mean(a != b))
        assert flip_fraction_packed(pack_bipolar(a), pack_bipolar(b)) == expected

    def test_zero_for_identical_inputs(self):
        packed = pack_bipolar(random_hypervectors(3, 77, seed=13))
        assert flip_fraction_packed(packed, packed) == 0.0

    def test_shape_mismatch_raises(self):
        a = pack_bipolar(random_hypervectors(2, 64, seed=14))
        b = pack_bipolar(random_hypervectors(3, 64, seed=15))
        with pytest.raises(ValueError, match="differ"):
            flip_fraction_packed(a, b)


class TestRunShardedSum:
    def test_sums_partials_exactly(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        rows = np.arange(60, dtype=np.int64).reshape(20, 3)
        result = run_sharded_sum(
            lambda start, stop: rows[start:stop].sum(axis=0), rows.shape[0]
        )
        np.testing.assert_array_equal(result, rows.sum(axis=0))

    def test_small_inputs_take_the_direct_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
        rows = np.ones((3, 2), dtype=np.int64)
        result = run_sharded_sum(
            lambda start, stop: rows[start:stop].sum(axis=0), rows.shape[0]
        )
        np.testing.assert_array_equal(result, [3, 3])


class TestEnsembleScoreboard:
    def make_board(self, rows=10, models=4, dimension=100, seed=0):
        from repro.kernels.train import EnsembleScoreboard

        samples = random_hypervectors(rows, dimension, seed=seed)
        bank = random_hypervectors(models, dimension, seed=seed + 1)
        board = EnsembleScoreboard(
            pack_bipolar(samples), pack_bipolar(bank).words, dimension
        )
        return board, samples, bank

    def test_initial_scores_match_dense_dot(self):
        board, samples, bank = self.make_board()
        np.testing.assert_array_equal(board.scores, dot_similarity(samples, bank))
        assert board.num_models == 4

    def test_flip_bits_patches_only_that_column(self):
        board, samples, bank = self.make_board()
        before = board.scores.copy()
        bank[2, [3, 50, 99]] = -bank[2, [3, 50, 99]]
        board.flip_bits(2, np.array([3, 50, 99]))
        np.testing.assert_array_equal(board.scores, dot_similarity(samples, bank))
        untouched = [0, 1, 3]
        np.testing.assert_array_equal(board.scores[:, untouched], before[:, untouched])

    def test_word_count_mismatch_rejected(self):
        from repro.kernels.train import EnsembleScoreboard

        samples = pack_bipolar(random_hypervectors(5, 100, seed=0))
        bank = pack_bipolar(random_hypervectors(3, 200, seed=1))
        with pytest.raises(ValueError, match="does not match"):
            EnsembleScoreboard(samples, bank.words, 100)

    def test_dimension_mismatch_rejected(self):
        from repro.kernels.train import EnsembleScoreboard

        samples = pack_bipolar(random_hypervectors(5, 100, seed=0))
        bank = pack_bipolar(random_hypervectors(3, 100, seed=1))
        with pytest.raises(ValueError, match="dimension mismatch"):
            EnsembleScoreboard(samples, bank.words, 101)

    def test_out_of_range_flip_positions_rejected(self):
        board, _, _ = self.make_board(dimension=100)
        with pytest.raises(ValueError, match=r"\[0, 100\)"):
            board.flip_bits(0, np.array([100]))
