"""Unit tests for repro.core.lehdc."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier


@pytest.fixture(scope="module")
def fast_config():
    return LeHDCConfig(
        epochs=15, batch_size=32, dropout_rate=0.2, weight_decay=0.01, learning_rate=0.01
    )


class TestLeHDCClassifier:
    def test_fit_produces_binary_class_hypervectors(self, encoded_problem, fast_config):
        model = LeHDCClassifier(config=fast_config, seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.class_hypervectors_.shape == (
            encoded_problem["num_classes"],
            encoded_problem["dimension"],
        )
        assert set(np.unique(model.class_hypervectors_)) <= {-1, 1}

    def test_latent_hypervectors_binarise_to_class_hypervectors(
        self, encoded_problem, fast_config
    ):
        model = LeHDCClassifier(config=fast_config, seed=1)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        rebinarised = np.where(model.latent_class_hypervectors_ < 0, -1, 1)
        np.testing.assert_array_equal(rebinarised, model.class_hypervectors_)

    def test_beats_baseline_on_test_set(self, encoded_problem, fast_config):
        baseline = BaselineHDC(seed=2).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        lehdc = LeHDCClassifier(config=fast_config, seed=2).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        baseline_accuracy = baseline.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        lehdc_accuracy = lehdc.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert lehdc_accuracy >= baseline_accuracy - 0.02

    def test_history_recorded(self, encoded_problem, fast_config):
        model = LeHDCClassifier(config=fast_config, seed=3)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.history_.epochs == fast_config.epochs

    def test_epochs_override(self, encoded_problem, fast_config):
        model = LeHDCClassifier(config=fast_config, seed=4)
        model.fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            epochs=3,
        )
        assert model.history_.epochs == 3

    def test_validation_split_from_config(self, encoded_problem):
        config = LeHDCConfig(
            epochs=3, batch_size=32, dropout_rate=0.0, validation_fraction=0.2
        )
        model = LeHDCClassifier(config=config, seed=5)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert len(model.history_.validation_accuracy) == 3

    def test_explicit_validation_set(self, encoded_problem, fast_config):
        model = LeHDCClassifier(config=fast_config, seed=6)
        model.fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
            epochs=4,
        )
        assert len(model.history_.validation_accuracy) == 4

    def test_warm_start_from_centroids(self, encoded_problem):
        config = LeHDCConfig(
            epochs=1,
            batch_size=32,
            dropout_rate=0.0,
            warm_start_from_centroids=True,
            learning_rate=1e-6,  # effectively freeze training
        )
        warm = LeHDCClassifier(config=config, seed=7)
        warm.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        baseline = BaselineHDC(seed=7).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        # With a frozen learning rate the warm-started model should stay very
        # close to the baseline centroids (bit agreement well above chance).
        agreement = float(
            np.mean(warm.class_hypervectors_ == baseline.class_hypervectors_)
        )
        assert agreement > 0.9

    def test_inference_matches_bnn_forward(self, encoded_problem, fast_config):
        # The HDC inference path (argmax of dot products) must agree with the
        # trained BNN's forward pass in eval mode — the paper's equivalence.
        model = LeHDCClassifier(config=fast_config, seed=8)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        queries = encoded_problem["test_hypervectors"][:25]
        hdc_predictions = model.predict(queries)
        model.model_.eval()
        bnn_logits = model.model_.forward(queries.astype(np.float64))
        bnn_predictions = np.argmax(bnn_logits, axis=1)
        np.testing.assert_array_equal(hdc_predictions, bnn_predictions)

    def test_default_config_used_when_none(self):
        model = LeHDCClassifier(seed=9)
        assert model.config.epochs == 100

    def test_predict_before_fit(self, encoded_problem):
        with pytest.raises(RuntimeError):
            LeHDCClassifier(seed=10).predict(encoded_problem["test_hypervectors"])
