"""Unit tests for repro.datasets.loaders (IDX/CSV parsing, real-data fallback)."""

import gzip
import struct

import numpy as np
import pytest

from repro.datasets.loaders import (
    DATA_DIR_ENV,
    data_directory,
    load_csv_dataset,
    load_idx_dataset,
    load_idx_file,
    try_load_real_dataset,
)


def write_idx(path, array):
    """Write *array* (uint8) in IDX format to *path*."""
    array = np.asarray(array, dtype=np.uint8)
    with open(path, "wb") as handle:
        handle.write(bytes([0, 0, 0x08, array.ndim]))
        handle.write(struct.pack(f">{array.ndim}I", *array.shape))
        handle.write(array.tobytes())


class TestLoadIdxFile:
    def test_roundtrip(self, tmp_path):
        array = np.arange(24, dtype=np.uint8).reshape(2, 3, 4)
        path = tmp_path / "data-idx3-ubyte"
        write_idx(path, array)
        np.testing.assert_array_equal(load_idx_file(path), array)

    def test_gzipped(self, tmp_path):
        array = np.arange(12, dtype=np.uint8).reshape(3, 4)
        raw_path = tmp_path / "plain"
        write_idx(raw_path, array)
        gz_path = tmp_path / "data.gz"
        gz_path.write_bytes(gzip.compress(raw_path.read_bytes()))
        np.testing.assert_array_equal(load_idx_file(gz_path), array)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"\x01\x02\x03\x04" + b"\x00" * 16)
        with pytest.raises(ValueError):
            load_idx_file(path)

    def test_truncated_data(self, tmp_path):
        path = tmp_path / "short"
        with open(path, "wb") as handle:
            handle.write(bytes([0, 0, 0x08, 1]))
            handle.write(struct.pack(">I", 10))
            handle.write(bytes(3))  # only 3 of 10 declared bytes
        with pytest.raises(ValueError):
            load_idx_file(path)


class TestLoadIdxDataset:
    def test_full_layout(self, tmp_path):
        rng = np.random.default_rng(0)
        write_idx(tmp_path / "train-images-idx3-ubyte", rng.integers(0, 256, (10, 4, 4)))
        write_idx(tmp_path / "train-labels-idx1-ubyte", rng.integers(0, 3, 10))
        write_idx(tmp_path / "t10k-images-idx3-ubyte", rng.integers(0, 256, (5, 4, 4)))
        write_idx(tmp_path / "t10k-labels-idx1-ubyte", rng.integers(0, 3, 5))
        data = load_idx_dataset(tmp_path, "mini")
        assert data.num_train == 10
        assert data.num_test == 5
        assert data.num_features == 16
        assert data.train_features.max() <= 1.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_idx_dataset(tmp_path, "missing")


class TestLoadCsvDataset:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        for split, rows in (("train", 12), ("test", 6)):
            features = rng.normal(size=(rows, 3))
            labels = rng.integers(0, 2, size=(rows, 1))
            np.savetxt(tmp_path / f"{split}.csv", np.hstack([features, labels]), delimiter=",")
        data = load_csv_dataset(tmp_path, "csvset")
        assert data.num_train == 12
        assert data.num_test == 6
        assert data.num_features == 3

    def test_missing_split(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csv_dataset(tmp_path, "empty")


class TestRealDataDiscovery:
    def test_data_directory_unset(self, monkeypatch):
        monkeypatch.delenv(DATA_DIR_ENV, raising=False)
        assert data_directory() is None

    def test_data_directory_missing_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path / "nope"))
        assert data_directory() is None

    def test_try_load_returns_none_without_files(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path))
        assert try_load_real_dataset("mnist") is None

    def test_try_load_csv(self, monkeypatch, tmp_path):
        dataset_dir = tmp_path / "ucihar"
        dataset_dir.mkdir()
        rng = np.random.default_rng(2)
        for split, rows in (("train", 8), ("test", 4)):
            features = rng.normal(size=(rows, 3))
            labels = rng.integers(0, 2, size=(rows, 1))
            np.savetxt(dataset_dir / f"{split}.csv", np.hstack([features, labels]), delimiter=",")
        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path))
        data = try_load_real_dataset("ucihar")
        assert data is not None
        assert data.metadata["source"] == "csv"
