"""Unit tests for repro.loadgen: sampler determinism, traffic, runner, report."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.loadgen import (
    ClosedLoop,
    InProcessTarget,
    OpenLoop,
    RequestSampler,
    TargetError,
    build_report,
    format_report,
    run_load_test,
    validate_report,
    validate_slo_report,
    write_report,
)
from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp


class TestRequestSampler:
    def test_same_seed_same_stream(self):
        first = RequestSampler(dataset="ucihar", profile="tiny", seed=7)
        second = RequestSampler(dataset="ucihar", profile="tiny", seed=7)
        assert np.array_equal(first.indices(50), second.indices(50))
        assert first.digest(50) == second.digest(50)

    def test_different_seed_different_stream(self):
        first = RequestSampler(dataset="ucihar", profile="tiny", seed=7)
        second = RequestSampler(dataset="ucihar", profile="tiny", seed=8)
        assert first.digest(50) != second.digest(50)

    def test_indices_are_pure_in_the_seed(self):
        sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=3)
        first = sampler.indices(20)
        sampler.indices(5)  # interleaved draws must not perturb the stream
        assert np.array_equal(sampler.indices(20), first)

    def test_prefix_stability(self):
        sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=3)
        assert np.array_equal(sampler.indices(50)[:20], sampler.indices(20))

    def test_stream_yields_rows_from_split(self):
        sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=0)
        pairs = list(sampler.stream(10))
        assert len(pairs) == 10
        for position, (index, row) in enumerate(pairs):
            assert index == position
            assert row.shape == (sampler.num_features,)

    def test_from_arrays(self):
        features = np.arange(12, dtype=np.float64).reshape(4, 3)
        sampler = RequestSampler.from_arrays(features, seed=1)
        assert sampler.num_features == 3
        assert sampler.digest(8) == RequestSampler.from_arrays(features, seed=1).digest(8)

    def test_bad_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            RequestSampler(dataset="ucihar", split="validation")


class TestTraffic:
    def test_open_loop_arrivals_deterministic_and_rate_consistent(self):
        traffic = OpenLoop(rate_rps=100.0, seed=5)
        offsets = traffic.arrival_offsets(2000)
        assert np.array_equal(offsets, OpenLoop(rate_rps=100.0, seed=5).arrival_offsets(2000))
        assert np.all(np.diff(offsets) >= 0)
        mean_gap = float(np.diff(offsets, prepend=0.0).mean())
        assert mean_gap == pytest.approx(1.0 / 100.0, rel=0.1)

    def test_open_loop_validation(self):
        with pytest.raises(ValueError, match="rate_rps"):
            OpenLoop(rate_rps=0.0)
        with pytest.raises(ValueError, match="max_outstanding"):
            OpenLoop(rate_rps=1.0, max_outstanding=0)

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError, match="concurrency"):
            ClosedLoop(concurrency=0)
        assert ClosedLoop(concurrency=3).describe() == {
            "mode": "closed",
            "concurrency": 3,
        }


@pytest.fixture(scope="module")
def loadgen_app():
    sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=0)
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(sampler.train_features, sampler.train_labels)
    registry = ModelRegistry()
    registry.register("ucihar", PackedInferenceEngine(pipeline, name="ucihar"))
    app = ServeApp(registry, max_wait_ms=0.5, cache_size=0)
    yield app, sampler
    app.close()


class TestRunner:
    def test_closed_loop_run_produces_valid_report(self, loadgen_app):
        app, sampler = loadgen_app
        report = run_load_test(
            InProcessTarget(app),
            sampler,
            ClosedLoop(concurrency=3),
            num_requests=40,
            warmup_requests=8,
        )
        validate_report(report)
        assert report["results"]["completed"] == 40
        assert report["config"]["traffic"]["mode"] == "closed"
        assert report["stream_digest"] == sampler.digest(48)

    def test_open_loop_run_produces_valid_report(self, loadgen_app):
        app, sampler = loadgen_app
        report = run_load_test(
            InProcessTarget(app),
            sampler,
            OpenLoop(rate_rps=400.0, seed=0),
            num_requests=30,
            warmup_requests=4,
        )
        validate_report(report)
        assert report["config"]["traffic"]["rate_rps"] == 400.0

    def test_errors_are_counted_not_fatal(self, loadgen_app):
        app, _ = loadgen_app
        # A sampler whose rows have the wrong width: every request is a 400.
        bad = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        report = run_load_test(
            InProcessTarget(app),
            bad,
            ClosedLoop(concurrency=2),
            num_requests=10,
            warmup_requests=0,
        )
        assert report["results"]["errors"] == 10
        assert report["results"]["completed"] == 0
        with pytest.raises(ValueError, match="no completed requests"):
            validate_report(report)

    def test_target_error_on_unknown_model(self, loadgen_app):
        app, sampler = loadgen_app
        target = InProcessTarget(app, model="nope")
        with pytest.raises(TargetError, match="404"):
            target.send(sampler.features[0])

    def test_input_validation(self, loadgen_app):
        app, sampler = loadgen_app
        target = InProcessTarget(app)
        with pytest.raises(ValueError, match="num_requests"):
            run_load_test(target, sampler, ClosedLoop(), num_requests=0)
        with pytest.raises(ValueError, match="warmup"):
            run_load_test(
                target, sampler, ClosedLoop(), num_requests=1, warmup_requests=-1
            )


class TestReport:
    def _report(self):
        sampler = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        return build_report(
            target={"kind": "in-process", "model": None, "top_k": 1},
            traffic={"mode": "closed", "concurrency": 2},
            sampler=sampler,
            num_requests=8,
            warmup_requests=2,
            warmup_errors=0,
            latencies=[0.001, 0.002, 0.003, 0.004],
            errors=0,
            duration_seconds=0.5,
        )

    def test_build_and_validate(self):
        report = self._report()
        validate_report(report)
        assert report["results"]["throughput_rps"] == pytest.approx(8.0)
        latency = report["results"]["latency_ms"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert latency["max_ms"] == pytest.approx(4.0)

    def test_validate_rejects_degenerate_reports(self):
        report = self._report()
        report["results"]["throughput_rps"] = 0.0
        with pytest.raises(ValueError, match="throughput"):
            validate_report(report)
        missing = self._report()
        del missing["stream_digest"]
        with pytest.raises(ValueError, match="stream_digest"):
            validate_report(missing)

    def test_format_report_mentions_key_numbers(self):
        text = format_report(self._report())
        assert "throughput" in text and "p99" in text

    def test_write_report_round_trips(self, tmp_path):
        report = self._report()
        path = write_report(tmp_path / "soak" / "report.json", report)
        assert json.loads(path.read_text()) == report


class TestResilience:
    def _chaos_report(self, errors_by_status=None, errors_by_code=None,
                      completed=95, errors=5, untyped=0, violations=0):
        sampler = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        return build_report(
            target={"kind": "in-process", "model": None, "top_k": 1},
            traffic={"mode": "closed", "concurrency": 2},
            sampler=sampler,
            num_requests=completed + errors,
            warmup_requests=0,
            warmup_errors=0,
            latencies=[0.001] * completed,
            errors=errors,
            duration_seconds=0.5,
            errors_by_status=errors_by_status or {"503": errors},
            errors_by_code=errors_by_code or {"worker_crashed": errors},
            untyped_errors=untyped,
            deadline_violations=violations,
            fault_plan={"seed": 0, "rules": []},
        )

    def test_resilience_block_and_availability(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report()
        resilience = report["resilience"]
        assert resilience["availability"] == pytest.approx(0.95)
        assert resilience["errors_by_status"] == {"503": 5}
        assert resilience["errors_by_code"] == {"worker_crashed": 5}
        validate_resilience_report(report, min_availability=0.95)

    def test_low_availability_rejected(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report(completed=80, errors=20)
        with pytest.raises(ValueError, match="availability"):
            validate_resilience_report(report, min_availability=0.95)

    def test_untyped_errors_rejected(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report(untyped=1)
        with pytest.raises(ValueError, match="untyped"):
            validate_resilience_report(report)

    def test_deadline_violations_rejected(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report(violations=2)
        with pytest.raises(ValueError, match="deadline"):
            validate_resilience_report(report)

    def test_non_overload_status_rejected(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report(errors_by_status={"500": 2, "503": 3})
        with pytest.raises(ValueError, match="non-overload"):
            validate_resilience_report(report)

    def test_typed_statuses_accepted(self):
        from repro.loadgen import validate_resilience_report

        report = self._chaos_report(
            errors_by_status={"429": 2, "503": 2, "504": 1},
            errors_by_code={"overloaded": 2, "worker_crashed": 2, "deadline_exceeded": 1},
        )
        validate_resilience_report(report)

    def test_format_report_shows_resilience_under_faults(self):
        text = format_report(self._chaos_report())
        assert "availability" in text
        assert "503" in text
        assert "fault plan" in text

    def test_typed_errors_flow_from_app_to_report(self, loadgen_app):
        app, _ = loadgen_app
        # Wrong feature width: every request is a typed 400 bad_request, so
        # the breakdown must bucket them by status and code with zero
        # untyped errors.
        bad = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        report = run_load_test(
            InProcessTarget(app),
            bad,
            ClosedLoop(concurrency=2),
            num_requests=10,
            warmup_requests=0,
        )
        resilience = report["resilience"]
        assert resilience["availability"] == 0.0
        assert resilience["errors_by_status"] == {"400": 10}
        assert resilience["errors_by_code"] == {"bad_request": 10}
        assert resilience["untyped_errors"] == 0


class TestZipfTenants:
    def test_model_stream_is_deterministic_in_the_seed(self):
        models = [f"t{i:02d}" for i in range(8)]
        first = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models, zipf_s=1.1
        )
        second = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models, zipf_s=1.1
        )
        assert first.model_names(64) == second.model_names(64)
        assert first.digest(64) == second.digest(64)

    def test_model_stream_independent_of_row_stream(self):
        models = ["a", "b", "c"]
        plain = RequestSampler(dataset="ucihar", profile="tiny", seed=5)
        multi = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models
        )
        np.testing.assert_array_equal(plain.indices(32), multi.indices(32))
        assert plain.digest(32) != multi.digest(32)  # tenants fold in

    def test_zipf_skews_towards_low_ranks(self):
        models = [f"t{i:02d}" for i in range(16)]
        sampler = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models, zipf_s=1.5
        )
        indices = sampler.model_indices(2000)
        head = float(np.mean(indices < 4))
        assert head > 0.5  # the hot set dominates
        assert len(np.unique(indices)) > 4  # but the tail is visited

    def test_zipf_s_changes_the_stream(self):
        models = ["a", "b", "c", "d"]
        flat = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models, zipf_s=0.2
        )
        steep = RequestSampler(
            dataset="ucihar", profile="tiny", seed=5, models=models, zipf_s=3.0
        )
        assert flat.model_names(128) != steep.model_names(128)

    def test_no_models_means_no_model_stream(self):
        sampler = RequestSampler(dataset="ucihar", profile="tiny", seed=5)
        assert sampler.models is None
        assert sampler.model_indices(8) is None
        assert sampler.model_names(8) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="models"):
            RequestSampler(dataset="ucihar", profile="tiny", models=[])
        with pytest.raises(ValueError, match="zipf_s"):
            RequestSampler(
                dataset="ucihar", profile="tiny", models=["a"], zipf_s=0
            )


class TestRetryPolicy:
    def _error(self, status=503, retry_after=None):
        from repro.loadgen.runner import TargetError

        return TargetError("boom", status=status, retry_after=retry_after)

    def test_retries_only_backpressure_statuses(self):
        from repro.loadgen import RetryPolicy

        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(self._error(429), attempt=0)
        assert policy.should_retry(self._error(503), attempt=1)
        assert not policy.should_retry(self._error(503), attempt=2)  # spent
        assert not policy.should_retry(self._error(400), attempt=0)
        assert not policy.should_retry(self._error(500), attempt=0)
        assert not policy.should_retry(self._error(None), attempt=0)  # untyped

    def test_delay_honours_server_hint_and_caps(self):
        from repro.loadgen import RetryPolicy

        policy = RetryPolicy(
            max_retries=3, backoff_seconds=0.1, max_backoff_seconds=1.0, seed=9
        )
        hinted = policy.delay(self._error(retry_after=0.5), index=0, attempt=0)
        assert 0.25 <= hinted < 0.5  # hint times jitter in [0.5, 1.0)
        capped = policy.delay(self._error(retry_after=30.0), index=0, attempt=0)
        assert capped < 1.0  # the cap beats an absurd hint

    def test_delay_backs_off_exponentially_without_a_hint(self):
        from repro.loadgen import RetryPolicy

        policy = RetryPolicy(
            max_retries=4, backoff_seconds=0.1, max_backoff_seconds=10.0, seed=9
        )
        error = self._error(retry_after=None)
        base = [0.1 * 2**attempt for attempt in range(3)]
        for attempt, expected in enumerate(base):
            delay = policy.delay(error, index=3, attempt=attempt)
            assert 0.5 * expected <= delay < expected

    def test_delays_are_seed_deterministic(self):
        from repro.loadgen import RetryPolicy

        error = self._error()
        first = RetryPolicy(seed=7).delay(error, index=11, attempt=1)
        second = RetryPolicy(seed=7).delay(error, index=11, attempt=1)
        third = RetryPolicy(seed=8).delay(error, index=11, attempt=1)
        assert first == second
        assert first != third

    def test_validation(self):
        from repro.loadgen import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=1.0, max_backoff_seconds=0.5)

    def test_run_load_test_counts_retries(self):
        from repro.loadgen import RetryPolicy  # noqa: F401 - exported

        class FlakyTarget:
            kind = "in-process"

            def __init__(self):
                self.calls = 0

            def send(self, features):
                from repro.loadgen.runner import TargetError

                self.calls += 1
                if self.calls % 3 == 0:
                    raise TargetError(
                        "shed", status=429, code="tenant_rate_limited",
                        retry_after=0.001,
                    )
                return 0.0001

            def describe(self):
                return {"kind": self.kind, "model": None, "top_k": 1}

        sampler = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        report = run_load_test(
            FlakyTarget(),
            sampler,
            ClosedLoop(concurrency=1),
            num_requests=12,
            warmup_requests=0,
            max_retries=2,
        )
        resilience = report["resilience"]
        assert report["results"]["errors"] == 0  # all sheds retried to success
        assert resilience["retries"] > 0
        assert resilience["retries_by_status"] == {
            "429": resilience["retries"]
        }
        assert report["config"]["retry_policy"]["max_retries"] == 2


class TestFleetReport:
    def _fleet_report(self, cold_loads=5, evictions=3, resident=4, cap=4):
        sampler = RequestSampler.from_arrays(
            np.zeros((4, 3)), seed=0, models=["a", "b"], zipf_s=1.1
        )
        before = {
            "requests": 0,
            "fleet": {
                "cold_loads": 0,
                "evictions": 0,
                "restores": 0,
                "bank_restores": 0,
                "resident_banks": 0,
                "peak_resident_banks": 0,
                "max_resident": cap,
                "dispatchers": 0,
            },
        }
        after = {
            "requests": 20,
            "fleet": {
                "cold_loads": cold_loads,
                "evictions": evictions,
                "restores": 1,
                "bank_restores": 0,
                "resident_banks": resident,
                "peak_resident_banks": max(resident, cap),
                "max_resident": cap,
                "dispatchers": resident,
            },
        }
        from repro.loadgen.report import server_metrics_delta

        return build_report(
            target={"kind": "in-process", "model": None, "top_k": 1},
            traffic={"mode": "closed", "concurrency": 2},
            sampler=sampler,
            num_requests=20,
            warmup_requests=0,
            warmup_errors=0,
            latencies=[0.001] * 20,
            errors=0,
            duration_seconds=0.5,
            server_metrics=server_metrics_delta(before, after),
        )

    def test_fleet_delta_and_config_recorded(self):
        report = self._fleet_report()
        delta = report["server_metrics_delta"]
        assert delta["cold_loads"] == 5
        assert delta["bank_evictions"] == 3
        assert delta["fleet_after"]["resident_banks"] == 4
        assert report["config"]["models"] == 2
        assert report["config"]["zipf_s"] == 1.1

    def test_validate_fleet_report_passes_engaged_pager(self):
        from repro.loadgen import validate_fleet_report

        validate_fleet_report(self._fleet_report(), max_resident_banks=4)

    def test_validate_fleet_report_rejects_vacuous_runs(self):
        from repro.loadgen import validate_fleet_report

        with pytest.raises(ValueError, match="cold loads"):
            validate_fleet_report(self._fleet_report(cold_loads=0))
        with pytest.raises(ValueError, match="evictions"):
            validate_fleet_report(self._fleet_report(evictions=0))
        with pytest.raises(ValueError, match="residency cap"):
            validate_fleet_report(
                self._fleet_report(resident=6, cap=4), max_resident_banks=4
            )

    def test_validate_fleet_report_requires_fleet_target(self):
        from repro.loadgen import validate_fleet_report

        sampler = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        report = build_report(
            target={"kind": "in-process", "model": None, "top_k": 1},
            traffic={"mode": "closed", "concurrency": 1},
            sampler=sampler,
            num_requests=4,
            warmup_requests=0,
            warmup_errors=0,
            latencies=[0.001] * 4,
            errors=0,
            duration_seconds=0.1,
        )
        with pytest.raises(ValueError, match="server_metrics_delta"):
            validate_fleet_report(report)


class TestSLOReport:
    def _slo_block(self, verdict="ok", budget=0.9):
        return {
            "alert_burn_rate": 14.4,
            "tenants": {
                "ucihar": {
                    "verdict": verdict,
                    "budget_remaining": budget,
                    "requests": 40,
                    "windows": {
                        "fast": {"burn_rate": 0.5},
                        "slow": {"burn_rate": 0.2},
                    },
                    "latency": {"p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0},
                },
            },
        }

    def _report(self, slo=None, exemplars=None):
        sampler = RequestSampler.from_arrays(np.zeros((4, 3)), seed=0)
        return build_report(
            target={"kind": "in-process", "model": None, "top_k": 1},
            traffic={"mode": "closed", "concurrency": 2},
            sampler=sampler,
            num_requests=8,
            warmup_requests=2,
            warmup_errors=0,
            latencies=[0.001, 0.002, 0.003, 0.004],
            errors=0,
            duration_seconds=0.5,
            slo=slo,
            exemplars=exemplars,
        )

    def test_valid_block_passes(self):
        report = self._report(slo=self._slo_block())
        validate_slo_report(report)

    def test_breached_verdict_is_well_formed(self):
        # "breached" is a valid verdict: the gate checks shape, not success.
        validate_slo_report(
            self._report(slo=self._slo_block(verdict="breached", budget=0.0))
        )

    def test_missing_block_rejected(self):
        with pytest.raises(ValueError, match="no slo block"):
            validate_slo_report(self._report())

    def test_empty_tenants_rejected(self):
        slo = self._slo_block()
        slo["tenants"] = {}
        with pytest.raises(ValueError, match="no tenants"):
            validate_slo_report(self._report(slo=slo))

    def test_bad_verdict_rejected(self):
        with pytest.raises(ValueError, match="bad verdict"):
            validate_slo_report(self._report(slo=self._slo_block(verdict="meh")))

    def test_budget_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            validate_slo_report(self._report(slo=self._slo_block(budget=1.5)))

    def test_missing_burn_rate_rejected(self):
        slo = self._slo_block()
        del slo["tenants"]["ucihar"]["windows"]["slow"]
        with pytest.raises(ValueError, match="slow-window burn rate"):
            validate_slo_report(self._report(slo=slo))

    def test_exemplar_requirement(self):
        report = self._report(slo=self._slo_block())
        with pytest.raises(ValueError, match="no latency exemplars"):
            validate_slo_report(report, require_exemplar=True)
        good = self._report(
            slo=self._slo_block(),
            exemplars=[
                {"model": "ucihar", "le": "0.01", "trace_id": "ab" * 8,
                 "value_ms": 4.2}
            ],
        )
        validate_slo_report(good, require_exemplar=True)

    def test_format_report_shows_verdicts_and_exemplars(self):
        text = format_report(
            self._report(
                slo=self._slo_block(),
                exemplars=[
                    {"model": "ucihar", "le": "0.01", "trace_id": "ab" * 8,
                     "value_ms": 4.2}
                ],
            )
        )
        assert "slo ucihar" in text
        assert "ok (budget 0.900" in text
        assert "trace exemplars" in text

    def test_runner_collects_slo_and_exemplars(self, loadgen_app):
        # The in-process app always runs an SLO engine; a traced soak must
        # surface its verdicts and at least one histogram exemplar.
        from repro.obs.trace import MemorySink, Tracer

        app, sampler = loadgen_app
        app.tracer = Tracer(MemorySink(), sample_rate=1.0)
        app.metrics  # noqa: B018 - document the app is live
        report = run_load_test(
            InProcessTarget(app),
            sampler,
            ClosedLoop(concurrency=2),
            num_requests=20,
            warmup_requests=2,
        )
        validate_slo_report(report, require_exemplar=True)
        tenant = report["slo"]["tenants"]["ucihar"]
        assert tenant["requests"] >= 20
        assert report["exemplars"][0]["trace_id"]
