"""Unit tests for repro.utils.logging."""

import io

from repro.utils.logging import RunLogger


class TestRunLogger:
    def test_records_events(self):
        logger = RunLogger(stream=None)
        logger.log("hello", value=1)
        logger.log("world")
        assert len(logger.events) == 2
        assert logger.events[0].values == {"value": 1}

    def test_echoes_to_stream(self):
        stream = io.StringIO()
        logger = RunLogger(name="test", stream=stream)
        logger.log("message", accuracy=0.5)
        output = stream.getvalue()
        assert "message" in output
        assert "accuracy=0.5000" in output

    def test_to_text(self):
        logger = RunLogger(stream=None)
        logger.section("part one")
        logger.log("done", count=3)
        text = logger.to_text()
        assert "part one" in text
        assert "count=3" in text

    def test_silent_when_no_stream(self):
        logger = RunLogger(stream=None)
        event = logger.log("quiet")
        assert event.message == "quiet"
