"""Unit tests for repro.eval.metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    MeanStd,
    accuracy,
    aggregate_mean_std,
    average_increment,
    confusion_matrix,
    per_class_accuracy,
)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 2, 2]), np.array([0, 1, 1, 2])) == 0.75

    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 1]), np.array([1, 1])) == 1.0
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_counts(self):
        predictions = np.array([0, 1, 1, 2, 2, 2])
        labels = np.array([0, 1, 2, 2, 2, 0])
        matrix = confusion_matrix(predictions, labels, num_classes=3)
        assert matrix[0, 0] == 1  # true 0 predicted 0
        assert matrix[2, 1] == 1  # true 2 predicted 1
        assert matrix[2, 2] == 2
        assert matrix.sum() == 6

    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 1, 0])
        per_class = per_class_accuracy(predictions, labels)
        assert per_class[0] == pytest.approx(2 / 3)
        assert per_class[1] == pytest.approx(1.0)


class TestMeanStd:
    def test_aggregate(self):
        summary = aggregate_mean_std([0.5, 0.7])
        assert summary.mean == pytest.approx(0.6)
        assert summary.std == pytest.approx(0.1)
        assert summary.count == 2

    def test_single_value_zero_std(self):
        summary = aggregate_mean_std([0.9])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_mean_std([])

    def test_string_format(self):
        assert str(MeanStd(mean=94.74, std=0.18, count=3)) == "94.74±0.18"

    def test_as_percent(self):
        summary = aggregate_mean_std([0.5, 0.6]).as_percent()
        assert summary.mean == pytest.approx(55.0)


class TestAverageIncrement:
    def test_table1_style_increment(self):
        baseline = [80.36, 68.04, 29.55, 82.46, 87.42, 77.66]
        lehdc = [94.74, 87.11, 46.10, 95.23, 94.89, 99.55]
        increment = average_increment(lehdc, baseline)
        # The paper reports +15.32 for this row (computed from its own rounded
        # per-dataset means the value is 15.355, so allow a small tolerance).
        assert increment == pytest.approx(15.32, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            average_increment([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            average_increment([], [])
