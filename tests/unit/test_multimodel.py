"""Unit tests for repro.classifiers.multimodel."""

import numpy as np
import pytest

from repro.classifiers.multimodel import MultiModelHDC


class TestMultiModelHDC:
    def test_fit_produces_ensemble(self, encoded_problem):
        model = MultiModelHDC(models_per_class=4, iterations=2, seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.model_hypervectors_.shape == (
            encoded_problem["num_classes"],
            4,
            encoded_problem["dimension"],
        )
        assert set(np.unique(model.model_hypervectors_)) <= {-1, 1}

    def test_accuracy_beats_chance(self, encoded_problem):
        model = MultiModelHDC(models_per_class=4, iterations=2, seed=1)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_decision_scores_shape(self, encoded_problem):
        model = MultiModelHDC(models_per_class=3, iterations=1, seed=2)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        scores = model.decision_scores(encoded_problem["test_hypervectors"][:5])
        assert scores.shape == (5, encoded_problem["num_classes"])

    def test_storage_grows_with_ensemble_size(self, encoded_problem):
        small = MultiModelHDC(models_per_class=2, iterations=1, seed=3)
        small.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        large = MultiModelHDC(models_per_class=6, iterations=1, seed=3)
        large.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert large.storage_hypervectors == 3 * small.storage_hypervectors

    def test_predict_before_fit_raises(self, encoded_problem):
        with pytest.raises(RuntimeError):
            MultiModelHDC().decision_scores(encoded_problem["test_hypervectors"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MultiModelHDC(models_per_class=0)
        with pytest.raises(ValueError):
            MultiModelHDC(iterations=0)
        with pytest.raises(ValueError):
            MultiModelHDC(flip_fraction=0.0)
        with pytest.raises(ValueError):
            MultiModelHDC(flip_fraction=1.5)

    def test_push_away_option(self, encoded_problem):
        # Both update rules must train; the default (pull-only) is used by the
        # benchmarks, the push-away variant matches the literal SearcHD update.
        for push_away in (False, True):
            model = MultiModelHDC(
                models_per_class=3, iterations=1, push_away=push_away, seed=5
            )
            model.fit(
                encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
            )
            accuracy = model.score(
                encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
            )
            assert accuracy > 0.4

    def test_majority_class_hypervectors_exposed(self, encoded_problem):
        model = MultiModelHDC(models_per_class=3, iterations=1, seed=4)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.class_hypervectors_.shape == (
            encoded_problem["num_classes"],
            encoded_problem["dimension"],
        )

    def test_history_recorded(self, encoded_problem):
        model = MultiModelHDC(models_per_class=3, iterations=2, seed=6)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        history = model.history_
        assert history.iterations == 2
        assert len(history.update_fraction) == 2
        assert len(history.iteration_seconds) == 2
        assert all(0.0 <= value <= 1.0 for value in history.train_accuracy)

    def test_decision_scores_dtype_and_values(self, encoded_problem):
        """Dense scoring runs in int32 (not the seed's per-call int64 casts)."""
        model = MultiModelHDC(models_per_class=3, iterations=1, seed=2)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        queries = encoded_problem["test_hypervectors"][:8]
        scores = model.decision_scores(queries)
        assert scores.dtype == np.int32
        flat = model.model_hypervectors_.reshape(-1, encoded_problem["dimension"])
        reference = (
            (queries.astype(np.int64) @ flat.astype(np.int64).T)
            .reshape(8, encoded_problem["num_classes"], 3)
            .max(axis=2)
        )
        np.testing.assert_array_equal(scores, reference)

    def test_packed_scoring_matches_dense(self, encoded_problem):
        from repro.kernels.packed import pack_bipolar

        model = MultiModelHDC(models_per_class=4, iterations=1, seed=3)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.supports_packed_scoring()
        queries = encoded_problem["test_hypervectors"]
        np.testing.assert_array_equal(
            model.decision_scores_packed(pack_bipolar(queries)),
            model.decision_scores(queries),
        )
        np.testing.assert_array_equal(
            model.predict_packed(pack_bipolar(queries)), model.predict(queries)
        )

    def test_packed_bank_is_cached_and_invalidated(self, encoded_problem):
        model = MultiModelHDC(models_per_class=2, iterations=1, seed=4)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        bank = model.packed_inference_bank()
        assert model.packed_inference_bank() is bank
        assert len(bank) == encoded_problem["num_classes"] * 2
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.packed_inference_bank() is not bank

    def test_packed_scoring_dimension_mismatch_raises(self, encoded_problem):
        from repro.kernels.packed import pack_bipolar

        model = MultiModelHDC(models_per_class=2, iterations=1, seed=5)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        wrong = pack_bipolar(encoded_problem["test_hypervectors"][:, :100])
        with pytest.raises(ValueError, match="dimension mismatch"):
            model.decision_scores_packed(wrong)
