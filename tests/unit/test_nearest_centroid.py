"""Unit tests for repro.classifiers.nearest_centroid."""

import numpy as np
import pytest

from repro.classifiers.nearest_centroid import NearestCentroidClassifier


class TestNearestCentroidClassifier:
    def test_euclidean_fit_predict(self, small_problem):
        model = NearestCentroidClassifier(metric="euclidean")
        model.fit(small_problem["train_features"], small_problem["train_labels"])
        accuracy = model.score(small_problem["test_features"], small_problem["test_labels"])
        assert accuracy > 0.7

    def test_cosine_fit_predict(self, small_problem):
        model = NearestCentroidClassifier(metric="cosine")
        model.fit(small_problem["train_features"], small_problem["train_labels"])
        accuracy = model.score(small_problem["test_features"], small_problem["test_labels"])
        assert accuracy > 0.5

    def test_centroids_are_class_means(self):
        features = np.array([[0.0, 0.0], [2.0, 2.0], [10.0, 10.0], [12.0, 12.0]])
        labels = np.array([0, 0, 1, 1])
        model = NearestCentroidClassifier().fit(features, labels)
        np.testing.assert_allclose(model.centroids_[0], [1.0, 1.0])
        np.testing.assert_allclose(model.centroids_[1], [11.0, 11.0])

    def test_trivially_separable(self):
        features = np.vstack([np.zeros((5, 3)), np.ones((5, 3)) * 10])
        labels = np.array([0] * 5 + [1] * 5)
        model = NearestCentroidClassifier().fit(features, labels)
        predictions = model.predict(np.array([[0.1, 0.1, 0.1], [9.9, 9.9, 9.9]]))
        np.testing.assert_array_equal(predictions, [0, 1])

    def test_missing_class_rejected(self):
        features = np.random.default_rng(0).normal(size=(4, 2))
        with pytest.raises(ValueError):
            NearestCentroidClassifier().fit(features, np.array([0, 0, 2, 2]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            NearestCentroidClassifier().predict(np.zeros((1, 2)))

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            NearestCentroidClassifier(metric="manhattan")
