"""Unit tests for repro.nn.init."""

import numpy as np
import pytest

from repro.nn.init import normal_init, scaled_uniform_init, sign_init


class TestScaledUniformInit:
    def test_range(self):
        values = scaled_uniform_init((100, 50), scale=0.02, seed=0)
        assert values.shape == (100, 50)
        assert np.all(np.abs(values) <= 0.02)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            scaled_uniform_init((5, 5), seed=1), scaled_uniform_init((5, 5), seed=1)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_uniform_init((2, 2), scale=0.0)


class TestNormalInit:
    def test_statistics(self):
        values = normal_init((200, 200), std=0.05, seed=2)
        assert abs(values.mean()) < 0.01
        assert values.std() == pytest.approx(0.05, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            normal_init((2, 2), std=-1.0)


class TestSignInit:
    def test_signs_preserved(self):
        bipolar = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        latent = sign_init(bipolar, magnitude=0.1)
        np.testing.assert_array_equal(np.sign(latent), bipolar)
        assert np.all(np.abs(latent) == 0.1)

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            sign_init(np.zeros((2, 2)))

    def test_rejects_bad_magnitude(self):
        with pytest.raises(ValueError):
            sign_init(np.ones((2, 2)), magnitude=0.0)
