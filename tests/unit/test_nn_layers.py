"""Unit tests for repro.nn.layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import BinaryLinear, Dropout, Linear, Sequential
from repro.nn.losses import cross_entropy_from_logits


def numerical_gradient(function, value, epsilon=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    gradient = np.zeros_like(value)
    flat_value = value.ravel()
    flat_gradient = gradient.ravel()
    for index in range(flat_value.size):
        original = flat_value[index]
        flat_value[index] = original + epsilon
        upper = function()
        flat_value[index] = original - epsilon
        lower = function()
        flat_value[index] = original
        flat_gradient[index] = (upper - lower) / (2 * epsilon)
    return gradient


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3, seed=0)
        outputs = layer.forward(np.random.default_rng(0).normal(size=(7, 5)))
        assert outputs.shape == (7, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        # Central differences with eps=1e-6 need full precision, so this
        # layer opts out of the float32 policy explicitly.
        layer = Linear(4, 3, seed=2, dtype=np.float64)
        inputs = rng.normal(size=(6, 4))
        labels = rng.integers(0, 3, size=6)

        def loss_value():
            logits = inputs @ layer.weight.value + layer.bias.value
            loss, _ = cross_entropy_from_logits(logits, labels)
            return loss

        logits = layer.forward(inputs)
        _, grad_logits = cross_entropy_from_logits(logits, labels)
        layer.zero_grad()
        layer.backward(grad_logits)

        numeric_weight = numerical_gradient(loss_value, layer.weight.value)
        numeric_bias = numerical_gradient(loss_value, layer.bias.value)
        np.testing.assert_allclose(layer.weight.grad, numeric_weight, atol=1e-6)
        np.testing.assert_allclose(layer.bias.grad, numeric_bias, atol=1e-6)

    def test_input_gradient(self):
        layer = Linear(3, 2, bias=False, seed=3)
        inputs = np.ones((2, 3))
        layer.forward(inputs)
        grad_inputs = layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(grad_inputs, np.ones((2, 2)) @ layer.weight.value.T)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2, seed=0).backward(np.ones((1, 2)))


class TestBinaryLinear:
    def test_binary_weight_values(self):
        layer = BinaryLinear(10, 4, seed=0)
        assert set(np.unique(layer.binary_weight)) <= {-1.0, 1.0}

    def test_forward_uses_binary_weights(self):
        layer = BinaryLinear(6, 2, seed=1)
        inputs = np.ones((1, 6))
        outputs = layer.forward(inputs)
        np.testing.assert_allclose(outputs, inputs @ layer.binary_weight)

    def test_ste_gradient_matches_input_outer_product(self):
        layer = BinaryLinear(4, 3, latent_clip=None, seed=2)
        inputs = np.random.default_rng(3).normal(size=(5, 4))
        grad_output = np.random.default_rng(4).normal(size=(5, 3))
        layer.forward(inputs)
        layer.zero_grad()
        layer.backward(grad_output)
        np.testing.assert_allclose(layer.weight.grad, inputs.T @ grad_output)

    def test_clip_masks_gradient(self):
        layer = BinaryLinear(2, 1, latent_clip=1.0, seed=5)
        layer.weight.value[:] = np.array([[2.0], [0.5]])  # first weight saturated
        layer.forward(np.ones((1, 2)))
        layer.zero_grad()
        layer.backward(np.ones((1, 1)))
        assert layer.weight.grad[0, 0] == 0.0
        assert layer.weight.grad[1, 0] != 0.0

    def test_clip_latent(self):
        layer = BinaryLinear(3, 2, latent_clip=0.5, seed=6)
        layer.weight.value[:] = 10.0
        layer.clip_latent()
        assert np.all(layer.weight.value <= 0.5)

    def test_clip_latent_noop_when_disabled(self):
        layer = BinaryLinear(3, 2, latent_clip=None, seed=7)
        layer.weight.value[:] = 10.0
        layer.clip_latent()
        assert np.all(layer.weight.value == 10.0)

    def test_set_latent_from_bipolar(self):
        layer = BinaryLinear(3, 2, seed=8)
        bipolar = np.array([[1, -1], [-1, 1], [1, 1]], dtype=np.float64)
        layer.set_latent_from_bipolar(bipolar, magnitude=0.1)
        np.testing.assert_array_equal(layer.binary_weight, bipolar)

    def test_set_latent_validation(self):
        layer = BinaryLinear(3, 2, seed=9)
        with pytest.raises(ValueError):
            layer.set_latent_from_bipolar(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            layer.set_latent_from_bipolar(np.ones((2, 2)))

    def test_zero_latent_binarises_to_plus_one(self):
        layer = BinaryLinear(2, 2, seed=10)
        layer.weight.value[:] = 0.0
        assert np.all(layer.binary_weight == 1.0)

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            BinaryLinear(2, 2, latent_clip=0.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        inputs = np.random.default_rng(1).normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(inputs), inputs)

    def test_training_mode_zeroes_some_inputs(self):
        layer = Dropout(0.5, seed=2)
        inputs = np.ones((10, 100))
        outputs = layer.forward(inputs)
        zero_fraction = float(np.mean(outputs == 0.0))
        assert 0.35 < zero_fraction < 0.65

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.3, seed=3)
        inputs = np.ones((200, 200))
        outputs = layer.forward(inputs)
        assert np.mean(outputs) == pytest.approx(1.0, abs=0.05)

    def test_backward_applies_same_mask(self):
        layer = Dropout(0.5, seed=4)
        inputs = np.ones((5, 20))
        outputs = layer.forward(inputs)
        grads = layer.backward(np.ones((5, 20)))
        np.testing.assert_array_equal(grads == 0.0, outputs == 0.0)

    def test_zero_rate_is_identity(self):
        layer = Dropout(0.0, seed=5)
        inputs = np.random.default_rng(6).normal(size=(3, 4))
        np.testing.assert_array_equal(layer.forward(inputs), inputs)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSequential:
    def test_forward_backward_chain(self):
        model = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
        inputs = np.random.default_rng(2).normal(size=(3, 4))
        outputs = model.forward(inputs)
        assert outputs.shape == (3, 2)
        grads = model.backward(np.ones((3, 2)))
        assert grads.shape == (3, 4)
