"""Unit tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import (
    SoftmaxCrossEntropy,
    cross_entropy_from_logits,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 4))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_values_stable(self):
        logits = np.array([[1e4, 0.0, -1e4]])
        probabilities = softmax(logits)
        assert np.all(np.isfinite(probabilities))
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_monotonic(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probabilities[0, 0] < probabilities[0, 1] < probabilities[0, 2]


class TestOneHot:
    def test_basic(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=np.int64), 3)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy_from_logits(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_loss(self):
        logits = np.zeros((4, 8))
        loss, _ = cross_entropy_from_logits(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(8))

    def test_gradient_sums_to_zero_per_row(self):
        logits = np.random.default_rng(2).normal(size=(6, 5))
        _, grad = cross_entropy_from_logits(logits, np.random.default_rng(3).integers(0, 5, size=6))
        np.testing.assert_allclose(grad.sum(axis=1), np.zeros(6), atol=1e-12)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 3, 0])
        _, grad = cross_entropy_from_logits(logits, labels)
        epsilon = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                upper, _ = cross_entropy_from_logits(perturbed, labels)
                perturbed[i, j] -= 2 * epsilon
                lower, _ = cross_entropy_from_logits(perturbed, labels)
                numeric[i, j] = (upper - lower) / (2 * epsilon)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_from_logits(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy_from_logits(np.zeros((2, 3)), np.array([0]))

    def test_extremely_wrong_prediction_finite(self):
        logits = np.array([[1e5, -1e5]])
        loss, grad = cross_entropy_from_logits(logits, np.array([1]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))


class TestSoftmaxCrossEntropyObject:
    def test_forward_backward(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.random.default_rng(5).normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        loss = loss_fn(logits, labels)
        expected_loss, expected_grad = cross_entropy_from_logits(logits, labels)
        assert loss == pytest.approx(expected_loss)
        np.testing.assert_allclose(loss_fn.backward(), expected_grad)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()
