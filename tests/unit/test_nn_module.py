"""Unit tests for repro.nn.module."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_integer_value_cast_to_policy_dtype(self):
        from repro.kernels.dispatch import float_dtype

        parameter = Parameter(np.array([1, 2, 3]))
        assert parameter.value.dtype == float_dtype()

    def test_float_value_dtype_preserved(self):
        assert Parameter(np.zeros(3, dtype=np.float64)).value.dtype == np.float64
        assert Parameter(np.zeros(3, dtype=np.float32)).value.dtype == np.float32

    def test_add_grad_accumulates(self):
        parameter = Parameter(np.zeros(3))
        parameter.add_grad(np.ones(3))
        parameter.add_grad(np.ones(3))
        np.testing.assert_array_equal(parameter.grad, [2, 2, 2])

    def test_add_grad_shape_check(self):
        parameter = Parameter(np.zeros(3), name="w")
        with pytest.raises(ValueError):
            parameter.add_grad(np.ones(4))

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(2))
        parameter.add_grad(np.ones(2))
        parameter.zero_grad()
        assert parameter.grad is None


class TestModule:
    def test_parameters_collects_children(self):
        model = Sequential(Linear(4, 3, seed=0), Dropout(0.5, seed=0), Linear(3, 2, seed=1))
        names = [p.name for p in model.parameters()]
        assert len(names) == 4  # two weights + two biases

    def test_named_parameters(self):
        layer = Linear(2, 2, seed=0)
        named = layer.named_parameters()
        assert "linear.weight" in named
        assert "linear.bias" in named

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5, seed=0), Linear(2, 2, seed=0))
        model.eval()
        assert not model.modules[0].training
        model.train()
        assert model.modules[0].training

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2, seed=0)
        layer.forward(np.ones((1, 3)))
        layer.backward(np.ones((1, 2)))
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            Module().backward(np.zeros(1))
