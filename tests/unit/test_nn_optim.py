"""Unit tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, Momentum, clip_gradient_norm


def make_parameter(value):
    parameter = Parameter(np.array(value, dtype=np.float64))
    return parameter


class TestSGD:
    def test_single_step(self):
        parameter = make_parameter([1.0, 2.0])
        parameter.add_grad(np.array([0.5, -0.5]))
        SGD([parameter], learning_rate=0.1).step()
        np.testing.assert_allclose(parameter.value, [0.95, 2.05])

    def test_skips_parameters_without_grad(self):
        parameter = make_parameter([1.0])
        SGD([parameter], learning_rate=0.1).step()
        np.testing.assert_allclose(parameter.value, [1.0])

    def test_coupled_weight_decay_adds_to_gradient(self):
        parameter = make_parameter([1.0])
        parameter.add_grad(np.array([0.0]))
        SGD(
            [parameter], learning_rate=0.1, weight_decay=0.5, decoupled_weight_decay=False
        ).step()
        np.testing.assert_allclose(parameter.value, [1.0 - 0.1 * 0.5 * 1.0])

    def test_decoupled_weight_decay_shrinks_value(self):
        parameter = make_parameter([1.0])
        parameter.add_grad(np.array([0.0]))
        SGD(
            [parameter], learning_rate=0.1, weight_decay=0.5, decoupled_weight_decay=True
        ).step()
        np.testing.assert_allclose(parameter.value, [1.0 * (1.0 - 0.1 * 0.5)])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)
        with pytest.raises(ValueError):
            SGD([make_parameter([1.0])], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([make_parameter([1.0])], learning_rate=0.1, weight_decay=-1.0)


class TestMomentum:
    def test_velocity_accumulates(self):
        parameter = make_parameter([0.0])
        optimizer = Momentum([parameter], learning_rate=1.0, momentum=0.9)
        for _ in range(2):
            parameter.zero_grad()
            parameter.add_grad(np.array([1.0]))
            optimizer.step()
        # First step moves by 1, second by 1 + 0.9 = 1.9; total 2.9.
        np.testing.assert_allclose(parameter.value, [-2.9])

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            Momentum([make_parameter([1.0])], learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        parameter = make_parameter([0.0])
        optimizer = Adam([parameter], learning_rate=0.01)
        parameter.add_grad(np.array([5.0]))
        optimizer.step()
        # With bias correction the first Adam step has magnitude ~= learning rate.
        assert abs(parameter.value[0] + 0.01) < 1e-6

    def test_converges_on_quadratic(self):
        parameter = make_parameter([5.0])
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(500):
            parameter.zero_grad()
            parameter.add_grad(2.0 * parameter.value)  # d/dx of x^2
            optimizer.step()
        assert abs(parameter.value[0]) < 0.05

    def test_per_parameter_state_is_independent(self):
        a = make_parameter([0.0])
        b = make_parameter([0.0])
        optimizer = Adam([a, b], learning_rate=0.1)
        a.add_grad(np.array([1.0]))
        optimizer.step()
        # b received no gradient and must not move.
        np.testing.assert_allclose(b.value, [0.0])

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            Adam([make_parameter([1.0])], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([make_parameter([1.0])], beta2=-0.1)
        with pytest.raises(ValueError):
            Adam([make_parameter([1.0])], epsilon=0.0)

    def test_set_learning_rate(self):
        optimizer = Adam([make_parameter([1.0])], learning_rate=0.1)
        optimizer.set_learning_rate(0.01)
        assert optimizer.learning_rate == 0.01
        with pytest.raises(ValueError):
            optimizer.set_learning_rate(0.0)

    def test_zero_grad(self):
        parameter = make_parameter([1.0])
        optimizer = Adam([parameter], learning_rate=0.1)
        parameter.add_grad(np.array([1.0]))
        optimizer.zero_grad()
        assert parameter.grad is None


class TestClipGradientNorm:
    def test_no_clip_below_threshold(self):
        parameter = make_parameter([1.0, 1.0])
        parameter.add_grad(np.array([0.3, 0.4]))
        norm = clip_gradient_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(parameter.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        parameter = make_parameter([1.0, 1.0])
        parameter.add_grad(np.array([3.0, 4.0]))
        clip_gradient_norm([parameter], max_norm=1.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0, rel=1e-6)

    def test_empty_and_validation(self):
        assert clip_gradient_norm([], max_norm=1.0) == 0.0
        with pytest.raises(ValueError):
            clip_gradient_norm([], max_norm=0.0)
