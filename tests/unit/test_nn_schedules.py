"""Unit tests for repro.nn.schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.nn.schedules import ConstantSchedule, ReduceOnLossIncrease, StepDecay


def make_optimizer(learning_rate=0.1):
    return SGD([Parameter(np.zeros(1))], learning_rate=learning_rate)


class TestConstantSchedule:
    def test_never_changes(self):
        optimizer = make_optimizer(0.05)
        schedule = ConstantSchedule(optimizer)
        for loss in [1.0, 2.0, 0.5, 3.0]:
            assert schedule.step(loss) == 0.05


class TestStepDecay:
    def test_decays_on_boundary(self):
        optimizer = make_optimizer(0.1)
        schedule = StepDecay(optimizer, every=2, factor=0.5)
        schedule.step(1.0)
        assert optimizer.learning_rate == 0.1
        schedule.step(1.0)
        assert optimizer.learning_rate == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), every=2, factor=1.5)


class TestReduceOnLossIncrease:
    def test_no_decay_while_improving(self):
        optimizer = make_optimizer(0.1)
        schedule = ReduceOnLossIncrease(optimizer, factor=0.5)
        for loss in [1.0, 0.9, 0.8, 0.7]:
            schedule.step(loss)
        assert optimizer.learning_rate == 0.1

    def test_decays_on_increase(self):
        optimizer = make_optimizer(0.1)
        schedule = ReduceOnLossIncrease(optimizer, factor=0.5, patience=1)
        schedule.step(1.0)
        schedule.step(2.0)  # increase -> decay
        assert optimizer.learning_rate == pytest.approx(0.05)

    def test_patience_delays_decay(self):
        optimizer = make_optimizer(0.1)
        schedule = ReduceOnLossIncrease(optimizer, factor=0.5, patience=2)
        schedule.step(1.0)
        schedule.step(2.0)
        assert optimizer.learning_rate == 0.1
        schedule.step(2.5)
        assert optimizer.learning_rate == pytest.approx(0.05)

    def test_floor(self):
        optimizer = make_optimizer(1e-5)
        schedule = ReduceOnLossIncrease(
            optimizer, factor=0.1, patience=1, min_learning_rate=1e-6
        )
        schedule.step(1.0)
        for _ in range(5):
            schedule.step(2.0)
        assert optimizer.learning_rate >= 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            ReduceOnLossIncrease(make_optimizer(), factor=1.5)
        with pytest.raises(ValueError):
            ReduceOnLossIncrease(make_optimizer(), min_learning_rate=0.0)
