"""Unit tests for repro.classifiers.nonbinary."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.nonbinary import NonBinaryHDC


class TestNonBinaryHDC:
    def test_fit_and_score(self, encoded_problem):
        model = NonBinaryHDC(seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        accuracy = model.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_nonbinary_at_least_as_good_as_binary_centroids(self, encoded_problem):
        # Non-binary centroids keep more information than their sign, so on the
        # same encoding they should not be meaningfully worse.
        binary = BaselineHDC(seed=0).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        nonbinary = NonBinaryHDC(seed=0).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        binary_accuracy = binary.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        nonbinary_accuracy = nonbinary.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert nonbinary_accuracy >= binary_accuracy - 0.05

    def test_retraining_iterations_improve_train_accuracy(self, encoded_problem):
        plain = NonBinaryHDC(retraining_iterations=0, seed=1).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        retrained = NonBinaryHDC(retraining_iterations=5, seed=1).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        plain_train = plain.score(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        retrained_train = retrained.score(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert retrained_train >= plain_train - 0.02

    def test_binarised_form_also_exposed(self, encoded_problem):
        model = NonBinaryHDC(seed=2)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert set(np.unique(model.class_hypervectors_)) <= {-1, 1}
        assert model.nonbinary_class_hypervectors_.dtype == np.float64

    def test_scores_are_cosine_bounded(self, encoded_problem):
        model = NonBinaryHDC(seed=3)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        scores = model.decision_scores(encoded_problem["test_hypervectors"][:20])
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NonBinaryHDC(retraining_iterations=-1)
        with pytest.raises(ValueError):
            NonBinaryHDC(learning_rate=0.0)
