"""Unit tests for repro.core.nonbinary_lehdc (the footnote-1 variant)."""

import numpy as np
import pytest

from repro.classifiers.nonbinary import NonBinaryHDC
from repro.core.configs import LeHDCConfig
from repro.core.nonbinary_lehdc import NonBinaryLeHDCClassifier


@pytest.fixture(scope="module")
def fast_config():
    return LeHDCConfig(
        epochs=15, batch_size=32, dropout_rate=0.1, weight_decay=0.01, learning_rate=0.01
    )


class TestNonBinaryLeHDC:
    def test_fit_produces_real_valued_class_hypervectors(self, encoded_problem, fast_config):
        model = NonBinaryLeHDCClassifier(config=fast_config, seed=0)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.nonbinary_class_hypervectors_.shape == (
            encoded_problem["num_classes"],
            encoded_problem["dimension"],
        )
        # Latent weights follow the kernel layer's float policy (float32 by
        # default); only real-valuedness matters here, not the width.
        assert np.issubdtype(model.nonbinary_class_hypervectors_.dtype, np.floating)
        assert set(np.unique(model.class_hypervectors_)) <= {-1, 1}

    def test_beats_plain_nonbinary_centroids(self, encoded_problem, fast_config):
        centroids = NonBinaryHDC(seed=1).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        learned = NonBinaryLeHDCClassifier(config=fast_config, seed=1).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        centroid_accuracy = centroids.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        learned_accuracy = learned.score(
            encoded_problem["test_hypervectors"], encoded_problem["test_labels"]
        )
        assert learned_accuracy >= centroid_accuracy - 0.03

    def test_scores_are_cosine_bounded(self, encoded_problem, fast_config):
        model = NonBinaryLeHDCClassifier(config=fast_config, seed=2)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        scores = model.decision_scores(encoded_problem["test_hypervectors"][:10])
        assert np.all(scores <= 1.0 + 1e-9)
        assert np.all(scores >= -1.0 - 1e-9)

    def test_to_binary_matches_exposed_class_hypervectors(self, encoded_problem, fast_config):
        model = NonBinaryLeHDCClassifier(config=fast_config, seed=3)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        np.testing.assert_array_equal(model.to_binary(), model.class_hypervectors_)

    def test_history_and_validation_tracking(self, encoded_problem, fast_config):
        model = NonBinaryLeHDCClassifier(config=fast_config, seed=4)
        model.fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
            epochs=4,
        )
        assert model.history_.epochs == 4
        assert len(model.history_.validation_accuracy) == 4

    def test_validation_args_must_come_together(self, encoded_problem, fast_config):
        model = NonBinaryLeHDCClassifier(config=fast_config, seed=5)
        with pytest.raises(ValueError):
            model.fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                validation_hypervectors=encoded_problem["test_hypervectors"],
            )

    def test_sgd_optimizer_variant(self, encoded_problem):
        config = LeHDCConfig(
            epochs=8, batch_size=32, dropout_rate=0.0, weight_decay=0.0,
            optimizer="sgd", learning_rate=0.05,
        )
        model = NonBinaryLeHDCClassifier(config=config, seed=6)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.score(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        ) > 0.5

    def test_predict_before_fit(self, encoded_problem):
        with pytest.raises(RuntimeError):
            NonBinaryLeHDCClassifier(seed=7).predict(encoded_problem["test_hypervectors"])
