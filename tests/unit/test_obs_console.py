"""Unit tests for repro.obs.console (the ``repro top`` dashboard)."""

import io
import json

import pytest

from repro.obs.console import build_view, render_view, run_console


def _snapshot(requests=100):
    return {
        "models": {
            "har": {
                "requests": requests,
                "errors": 2,
                "latency": {"p50_ms": 1.5, "p99_ms": 9.0},
            },
        },
        "schedulers": {"har": {"queue_depth": 4}},
        "cluster": {
            "har": {
                "num_workers": 2,
                "transport": "shm",
                "respawns": 1,
                "workers": {
                    "fleet": {
                        "utilization": 0.25,
                        "scoring_p50_ms": 1.0,
                        "scoring_p99_ms": 8.0,
                    },
                },
                "transport_stats": {
                    "totals": {
                        "frames_sent": 40,
                        "payload_bytes": 2_000_000,
                        "bytes_avoided": 1_500_000,
                        "inline_fallbacks": 1,
                    },
                },
            },
        },
        "fleet": {
            "resident_banks": 1,
            "max_resident": 2,
            "evictions": 3,
            "restores": 2,
            "cold_loads": 5,
            "dispatchers": 1,
            "breakers": {"har": {"state": "closed"}},
        },
        "slo": {
            "alert_burn_rate": 14.4,
            "tenants": {
                "har": {
                    "budget_remaining": 0.9,
                    "windows": {
                        "fast": {"burn_rate": 1.5},
                        "slow": {"burn_rate": 0.5},
                    },
                    "verdict": "ok",
                },
            },
        },
    }


class TestBuildView:
    def test_flattens_tenant_row(self):
        view = build_view(_snapshot())
        (row,) = view["tenants"]
        assert row["tenant"] == "har"
        assert row["requests"] == 100
        assert row["errors"] == 2
        assert row["qps"] is None  # one poll cannot make a rate
        assert row["p99_ms"] == 9.0
        assert row["queue_depth"] == 4
        assert row["budget_remaining"] == 0.9
        assert row["burn_fast"] == 1.5
        assert row["verdict"] == "ok"

    def test_qps_is_delta_over_elapsed(self):
        view = build_view(
            _snapshot(requests=150), previous=_snapshot(requests=100), elapsed=2.0
        )
        assert view["tenants"][0]["qps"] == pytest.approx(25.0)

    def test_counter_reset_clamps_to_zero(self):
        view = build_view(
            _snapshot(requests=10), previous=_snapshot(requests=100), elapsed=2.0
        )
        assert view["tenants"][0]["qps"] == 0.0

    def test_workers_fleet_and_transport_sections(self):
        view = build_view(_snapshot())
        (worker,) = view["workers"]
        assert worker["dispatcher"] == "har"
        assert worker["transport"] == "shm"
        assert worker["utilization"] == 0.25
        assert view["fleet"]["evictions"] == 3
        assert view["breakers"] == {"har": "closed"}
        assert view["transport"]["bytes_avoided"] == 1_500_000

    def test_slo_only_tenant_still_listed(self):
        # A tenant that has only shed (429) requests never reaches the model
        # metrics, but its burning SLO must still show up on the console.
        snapshot = _snapshot()
        snapshot["slo"]["tenants"]["ghost"] = {
            "budget_remaining": 0.0,
            "windows": {},
            "verdict": "breached",
        }
        view = build_view(snapshot)
        assert [row["tenant"] for row in view["tenants"]] == ["ghost", "har"]
        assert view["tenants"][0]["verdict"] == "breached"

    def test_empty_snapshot(self):
        view = build_view({})
        assert view["tenants"] == []
        assert view["workers"] == []
        assert view["transport"] is None


class TestRenderView:
    def test_renders_all_sections_plain(self):
        text = render_view(build_view(_snapshot()), color=False)
        assert "TENANT" in text
        assert "har" in text
        assert "ok" in text
        assert "DISPATCHER" in text
        assert "banks=1/2" in text
        assert "evictions=3" in text
        assert "har=closed" in text
        assert "avoided_mb=1.5" in text
        assert "\x1b[" not in text  # color off ⇒ no ANSI escapes

    def test_color_marks_verdict(self):
        text = render_view(build_view(_snapshot()), color=True)
        assert "\x1b[32mok\x1b[0m" in text  # green verdict

    def test_handles_empty_view(self):
        text = render_view(build_view({}), color=False)
        assert "no traffic yet" in text


class TestRunConsole:
    def test_once_json_emits_view(self):
        stream = io.StringIO()
        code = run_console(
            "http://host:1", once=True, as_json=True, stream=stream,
            fetch=lambda url: _snapshot(),
        )
        assert code == 0
        view = json.loads(stream.getvalue())
        assert view["tenants"][0]["tenant"] == "har"

    def test_polling_computes_rates(self):
        stream = io.StringIO()
        snapshots = iter([_snapshot(requests=100), _snapshot(requests=160)])
        clocks = iter([0.0, 3.0])
        code = run_console(
            "http://host:1",
            interval=0.0,
            as_json=True,
            stream=stream,
            fetch=lambda url: next(snapshots),
            sleep=lambda seconds: None,
            clock=lambda: next(clocks),
            max_polls=2,
        )
        assert code == 0
        # Two JSON documents were written; the second carries the rate.
        decoder = json.JSONDecoder()
        text = stream.getvalue()
        first, index = decoder.raw_decode(text)
        second, _ = decoder.raw_decode(text[index:].lstrip())
        assert first["tenants"][0]["qps"] is None
        assert second["tenants"][0]["qps"] == pytest.approx(20.0)

    def test_fetch_failure_exits_nonzero(self, capsys):
        def boom(url):
            raise OSError("connection refused")

        code = run_console(
            "http://host:1", once=True, stream=io.StringIO(), fetch=boom
        )
        assert code == 1
        assert "cannot poll" in capsys.readouterr().err
