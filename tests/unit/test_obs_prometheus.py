"""Unit tests for repro.obs.prometheus, including the golden-format test."""

import pytest

from repro.obs.prometheus import CONTENT_TYPE, render_prometheus, validate_exposition


def _snapshot():
    """A hand-built /v1/metrics snapshot covering every rendered family."""
    return {
        "models": {
            "har": {
                "requests": 12,
                "samples": 40,
                "errors": 1,
                "sheds": 2,
                "deadline_exceeded": 1,
                "batches": 5,
                "cache": {"hits": 3, "misses": 9},
                "latency": {
                    "count": 12,
                    "sum_seconds": 0.06,
                    "buckets": [
                        {"le": "0.001", "count": 2},
                        {
                            "le": "0.01",
                            "count": 10,
                            "exemplar": {
                                "trace_id": "deadbeefdeadbeef",
                                "value": 0.0089,
                                "timestamp": 1700000000.0,
                            },
                        },
                        {"le": "+Inf", "count": 12},
                    ],
                },
                "stages": {
                    "validate": {
                        "count": 12,
                        "sum_seconds": 0.001,
                        "buckets": [
                            {"le": "0.001", "count": 12},
                            {"le": "+Inf", "count": 12},
                        ],
                    },
                },
            },
        },
        "schedulers": {"har": {"queue_depth": 3}},
        "prediction_cache": {"entries": 7, "max_entries": 128},
        "shared_memory": {"segments": 2, "resident_bytes": 4096, "stats_slabs": 2},
        "cluster": {
            "har": {
                "respawns": 1,
                "failures": {"hangs": 1, "shard_retries": 2},
                "uptime_seconds": 10.0,
                "workers": {
                    "per_worker": [
                        {
                            "requests": 6,
                            "samples": 20,
                            "errors": 0,
                            "busy_seconds": 2.5,
                            "scoring_p50_ms": 400.0,
                            "scoring_p99_ms": 430.0,
                        },
                    ],
                    "fleet": {"requests": 6, "busy_seconds": 2.5},
                },
            },
        },
        "slo": {
            "alert_burn_rate": 14.4,
            "tenants": {
                "har": {
                    "budget_remaining": 0.75,
                    "windows": {
                        "fast": {"burn_rate": 2.0},
                        "slow": {"burn_rate": 0.5},
                    },
                    "alerting": False,
                },
            },
        },
    }


GOLDEN = """\
# HELP repro_requests_total Completed inference requests.
# TYPE repro_requests_total counter
repro_requests_total{model="har"} 12
# HELP repro_samples_total Samples scored.
# TYPE repro_samples_total counter
repro_samples_total{model="har"} 40
# HELP repro_errors_total Failed requests.
# TYPE repro_errors_total counter
repro_errors_total{model="har"} 1
# HELP repro_shed_total Requests rejected by admission control (HTTP 429).
# TYPE repro_shed_total counter
repro_shed_total{model="har"} 2
# HELP repro_deadline_exceeded_total Requests that missed their deadline (HTTP 504).
# TYPE repro_deadline_exceeded_total counter
repro_deadline_exceeded_total{model="har"} 1
# HELP repro_cache_hits_total Prediction-cache hits.
# TYPE repro_cache_hits_total counter
repro_cache_hits_total{model="har"} 3
# HELP repro_cache_misses_total Prediction-cache misses.
# TYPE repro_cache_misses_total counter
repro_cache_misses_total{model="har"} 9
# HELP repro_batches_total Coalesced micro-batches executed.
# TYPE repro_batches_total counter
repro_batches_total{model="har"} 5
# HELP repro_request_latency_seconds End-to-end request latency.
# TYPE repro_request_latency_seconds histogram
repro_request_latency_seconds_bucket{model="har",le="0.001"} 2
repro_request_latency_seconds_bucket{model="har",le="0.01"} 10 # {trace_id="deadbeefdeadbeef"} 0.0089 1700000000
repro_request_latency_seconds_bucket{model="har",le="+Inf"} 12
repro_request_latency_seconds_sum{model="har"} 0.06
repro_request_latency_seconds_count{model="har"} 12
# HELP repro_stage_latency_seconds Per-stage latency (validate, queue_wait, dispatch, ...).
# TYPE repro_stage_latency_seconds histogram
repro_stage_latency_seconds_bucket{model="har",stage="validate",le="0.001"} 12
repro_stage_latency_seconds_bucket{model="har",stage="validate",le="+Inf"} 12
repro_stage_latency_seconds_sum{model="har",stage="validate"} 0.001
repro_stage_latency_seconds_count{model="har",stage="validate"} 12
# HELP repro_scheduler_queue_depth Requests waiting in the micro-batch queue.
# TYPE repro_scheduler_queue_depth gauge
repro_scheduler_queue_depth{model="har"} 3
# HELP repro_prediction_cache_entries Resident LRU cache entries.
# TYPE repro_prediction_cache_entries gauge
repro_prediction_cache_entries 7
# HELP repro_shm_segments Published shared-memory segments.
# TYPE repro_shm_segments gauge
repro_shm_segments 2
# HELP repro_shm_resident_bytes Bytes of packed model banks resident in shared memory.
# TYPE repro_shm_resident_bytes gauge
repro_shm_resident_bytes 4096
# HELP repro_cluster_respawns_total Worker respawns after crashes.
# TYPE repro_cluster_respawns_total counter
repro_cluster_respawns_total{dispatcher="har"} 1
# HELP repro_cluster_hangs_total Worker hangs detected by the request-timeout watchdog.
# TYPE repro_cluster_hangs_total counter
repro_cluster_hangs_total{dispatcher="har"} 1
# HELP repro_cluster_shard_retries_total Shards retried once after a worker fault.
# TYPE repro_cluster_shard_retries_total counter
repro_cluster_shard_retries_total{dispatcher="har"} 2
# HELP repro_worker_requests_total Shards answered by each cluster worker.
# TYPE repro_worker_requests_total counter
repro_worker_requests_total{dispatcher="har",worker="0"} 6
# HELP repro_worker_busy_seconds_total Cumulative scoring time inside each worker.
# TYPE repro_worker_busy_seconds_total counter
repro_worker_busy_seconds_total{dispatcher="har",worker="0"} 2.5
# HELP repro_worker_utilization Worker busy fraction since the dispatcher started.
# TYPE repro_worker_utilization gauge
repro_worker_utilization{dispatcher="har",worker="0"} 0.25
# HELP repro_slo_error_budget_remaining Fraction of the tenant's error budget left (1 = untouched).
# TYPE repro_slo_error_budget_remaining gauge
repro_slo_error_budget_remaining{tenant="har"} 0.75
# HELP repro_slo_burn_rate Error-budget burn rate over the fast/slow window.
# TYPE repro_slo_burn_rate gauge
repro_slo_burn_rate{tenant="har",window="fast"} 2
repro_slo_burn_rate{tenant="har",window="slow"} 0.5
# HELP repro_slo_alerting Multiwindow burn-rate alert firing (1) or quiet (0).
# TYPE repro_slo_alerting gauge
repro_slo_alerting{tenant="har"} 0
"""


class TestRender:
    def test_golden_exposition(self):
        # The full output is pinned: any format drift is an API change for
        # whoever scrapes /metrics, and must show up in review.
        assert render_prometheus(_snapshot()) == GOLDEN

    def test_golden_output_validates(self):
        validate_exposition(GOLDEN)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_label_values_are_escaped(self):
        text = render_prometheus(
            {"schedulers": {'m"odel\n': {"queue_depth": 1}}}
        )
        assert 'model="m\\"odel\\n"' in text
        validate_exposition(text)

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestValidate:
    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            validate_exposition('mystery_metric{a="b"} 1\n')

    def test_rejects_unparseable_sample(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_exposition(
                "# TYPE broken counter\nbroken not-a-number\n"
            )

    def test_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
        )
        with pytest.raises(ValueError, match="cumulative"):
            validate_exposition(text)

    def test_accepts_exemplar_on_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5 # {trace_id="abcd1234abcd1234"} 0.042 1700000000\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        validate_exposition(text)

    def test_accepts_exemplar_without_timestamp(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5 # {trace_id="abcd1234abcd1234"} 0.042\n'
        )
        validate_exposition(text)

    def test_rejects_exemplar_on_non_bucket_sample(self):
        text = (
            "# TYPE c_total counter\n"
            'c_total 5 # {trace_id="abcd1234abcd1234"} 0.042\n'
        )
        with pytest.raises(ValueError, match="non-bucket"):
            validate_exposition(text)

    def test_rejects_malformed_exemplar(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5 # {trace_id=unquoted} 0.042\n'
        )
        with pytest.raises(ValueError, match="malformed exemplar"):
            validate_exposition(text)
        with pytest.raises(ValueError, match="malformed exemplar"):
            validate_exposition(
                "# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 5 # {trace_id="abc"} not-a-number\n'
            )
