"""Unit tests for repro.obs.shm_metrics (cross-process worker counters)."""

import pytest

from repro.obs.shm_metrics import (
    WorkerStatsSlab,
    merge_worker_stats,
    stats_summary,
    worker_summary,
)
from repro.obs.sketch import QuantileSketch, sketch_row_length


class TestWorkerStatsSlab:
    def test_fresh_slab_reads_zero(self):
        with WorkerStatsSlab.create() as slab:
            snapshot = slab.read()
            assert snapshot["requests"] == 0
            assert snapshot["samples"] == 0
            assert snapshot["errors"] == 0
            assert snapshot["busy_seconds"] == 0.0
            assert sum(snapshot["sketch_row"]) == 0.0

    def test_record_accumulates(self):
        with WorkerStatsSlab.create() as slab:
            slab.record(rows=4, seconds=0.002)
            slab.record(rows=1, seconds=0.0005)
            slab.record_error()
            snapshot = slab.read()
            assert snapshot["requests"] == 2
            assert snapshot["samples"] == 5
            assert snapshot["errors"] == 1
            assert snapshot["busy_seconds"] == pytest.approx(0.0025)
            sketch = QuantileSketch.from_row(snapshot["sketch_row"])
            assert sketch.count == 2
            assert sketch.max == pytest.approx(0.002)

    def test_attach_sees_creators_writes_without_resetting(self):
        owner = WorkerStatsSlab.create()
        try:
            owner.record(rows=3, seconds=0.001)
            borrowed = WorkerStatsSlab.attach(owner.name)
            assert borrowed.read()["samples"] == 3
            # The attached side is the writer in production; its sketch
            # inherits the previous incarnation's counts.
            borrowed.record(rows=2, seconds=0.001)
            borrowed.close()
            snapshot = owner.read()
            assert snapshot["samples"] == 5
            assert QuantileSketch.from_row(snapshot["sketch_row"]).count == 2
        finally:
            owner.close()

    def test_scoring_sketch_tracks_percentiles(self):
        with WorkerStatsSlab.create() as slab:
            for _ in range(99):
                slab.record(rows=1, seconds=0.001)
            slab.record(rows=1, seconds=1.0)
            summary = worker_summary(slab.read())
            assert summary["scoring_p50_ms"] == pytest.approx(1.0, rel=0.02)
            assert summary["scoring_p99_ms"] == pytest.approx(1.0, rel=0.02)

    def test_slab_is_small(self):
        with WorkerStatsSlab.create() as slab:
            # Counters + the sketch row: a handful of KB per worker slot.
            assert slab.nbytes <= 16384
            assert slab.nbytes == (4 + sketch_row_length()) * 8


class TestMergeAndSummary:
    def test_merge_sums_fields_and_sketches(self):
        first = WorkerStatsSlab.create()
        second = WorkerStatsSlab.create()
        try:
            first.record(rows=2, seconds=0.001)
            second.record(rows=3, seconds=0.010)
            second.record_error()
            merged = merge_worker_stats([first.read(), second.read()])
            assert merged["requests"] == 2
            assert merged["samples"] == 5
            assert merged["errors"] == 1
            assert merged["busy_seconds"] == pytest.approx(0.011)
            sketch = QuantileSketch.from_row(merged["sketch_row"])
            assert sketch.count == 2
            assert sketch.min == pytest.approx(0.001)
            assert sketch.max == pytest.approx(0.010)
        finally:
            first.close()
            second.close()

    def test_merged_percentiles_are_pooled_not_averaged(self):
        # One fast worker, one slow worker: the fleet p50 must reflect the
        # pooled stream (mostly fast), not an average of per-worker p50s.
        fast = WorkerStatsSlab.create()
        slow = WorkerStatsSlab.create()
        try:
            for _ in range(90):
                fast.record(rows=1, seconds=0.001)
            for _ in range(10):
                slow.record(rows=1, seconds=1.0)
            merged = merge_worker_stats([fast.read(), slow.read()])
            summary = stats_summary(merged, uptime_seconds=10.0)
            assert summary["scoring_p50_ms"] == pytest.approx(1.0, rel=0.02)
            assert summary["scoring_p95_ms"] == pytest.approx(1000.0, rel=0.02)
            assert summary["scoring_p99_ms"] == pytest.approx(1000.0, rel=0.02)
        finally:
            fast.close()
            slow.close()

    def test_merge_of_nothing_is_zero(self):
        merged = merge_worker_stats([])
        assert merged["requests"] == 0
        assert len(merged["sketch_row"]) == sketch_row_length()

    def test_stats_summary_utilization(self):
        first = WorkerStatsSlab.create()
        try:
            for _ in range(10):
                first.record(rows=4, seconds=0.2)
            merged = merge_worker_stats([first.read()])
            summary = stats_summary(merged, uptime_seconds=8.0)
            assert summary["utilization"] == pytest.approx(0.25)
            assert summary["mean_scoring_ms"] == pytest.approx(200.0)
            assert summary["scoring_p50_ms"] == pytest.approx(200.0, rel=0.02)
            assert 0.0 < summary["relative_accuracy"] < 1.0
        finally:
            first.close()

    def test_stats_summary_handles_idle_fleet(self):
        merged = merge_worker_stats([])
        summary = stats_summary(merged, uptime_seconds=0.0)
        assert summary["utilization"] == 0.0
        assert summary["mean_scoring_ms"] == 0.0
        assert summary["scoring_p50_ms"] == 0.0

    def test_worker_summary_is_json_ready(self):
        import json

        with WorkerStatsSlab.create() as slab:
            slab.record(rows=1, seconds=0.004)
            summary = worker_summary(slab.read())
            json.dumps(summary)
            assert "sketch_row" not in summary  # breakdown, not the raw row
