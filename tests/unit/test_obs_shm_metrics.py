"""Unit tests for repro.obs.shm_metrics (cross-process worker counters)."""

import pytest

from repro.obs.shm_metrics import (
    STAGE_BOUNDS,
    WorkerStatsSlab,
    bucket_percentile,
    merge_worker_stats,
    stats_summary,
)


class TestWorkerStatsSlab:
    def test_fresh_slab_reads_zero(self):
        with WorkerStatsSlab.create() as slab:
            snapshot = slab.read()
            assert snapshot["requests"] == 0
            assert snapshot["samples"] == 0
            assert snapshot["errors"] == 0
            assert snapshot["busy_seconds"] == 0.0
            assert sum(snapshot["scoring_buckets"]) == 0

    def test_record_accumulates(self):
        with WorkerStatsSlab.create() as slab:
            slab.record(rows=4, seconds=0.002)
            slab.record(rows=1, seconds=0.0005)
            slab.record_error()
            snapshot = slab.read()
            assert snapshot["requests"] == 2
            assert snapshot["samples"] == 5
            assert snapshot["errors"] == 1
            assert snapshot["busy_seconds"] == pytest.approx(0.0025)
            assert sum(snapshot["scoring_buckets"]) == 2

    def test_attach_sees_creators_writes_without_resetting(self):
        owner = WorkerStatsSlab.create()
        try:
            owner.record(rows=3, seconds=0.001)
            borrowed = WorkerStatsSlab.attach(owner.name)
            assert borrowed.read()["samples"] == 3
            # The attached side is the writer in production.
            borrowed.record(rows=2, seconds=0.001)
            borrowed.close()
            assert owner.read()["samples"] == 5
        finally:
            owner.close()

    def test_overflow_latency_lands_in_last_bucket(self):
        with WorkerStatsSlab.create() as slab:
            slab.record(rows=1, seconds=100.0)  # beyond the 20 s top bound
            assert slab.read()["scoring_buckets"][-1] == 1

    def test_slab_is_small(self):
        with WorkerStatsSlab.create() as slab:
            assert slab.nbytes <= 4096


class TestMergeAndSummary:
    def test_merge_sums_fields_and_buckets(self):
        first = WorkerStatsSlab.create()
        second = WorkerStatsSlab.create()
        try:
            first.record(rows=2, seconds=0.001)
            second.record(rows=3, seconds=0.010)
            second.record_error()
            merged = merge_worker_stats([first.read(), second.read()])
            assert merged["requests"] == 2
            assert merged["samples"] == 5
            assert merged["errors"] == 1
            assert merged["busy_seconds"] == pytest.approx(0.011)
            assert sum(merged["scoring_buckets"]) == 2
        finally:
            first.close()
            second.close()

    def test_merge_of_nothing_is_zero(self):
        merged = merge_worker_stats([])
        assert merged["requests"] == 0
        assert len(merged["scoring_buckets"]) == len(STAGE_BOUNDS) + 1

    def test_stats_summary_utilization(self):
        merged = {
            "requests": 10,
            "samples": 40,
            "errors": 0,
            "busy_seconds": 2.0,
            "scoring_buckets": [10] + [0] * len(STAGE_BOUNDS),
        }
        summary = stats_summary(merged, uptime_seconds=8.0)
        assert summary["utilization"] == pytest.approx(0.25)
        assert summary["mean_scoring_ms"] == pytest.approx(200.0)
        assert summary["scoring_p50_ms"] > 0

    def test_stats_summary_handles_idle_fleet(self):
        merged = merge_worker_stats([])
        summary = stats_summary(merged, uptime_seconds=0.0)
        assert summary["utilization"] == 0.0
        assert summary["mean_scoring_ms"] == 0.0
        assert summary["scoring_p50_ms"] == 0.0


class TestBucketPercentile:
    def test_empty_is_zero(self):
        assert bucket_percentile([0, 0, 0], 99) == 0.0

    def test_percentile_reports_bucket_upper_bound(self):
        bounds = (0.001, 0.01, 0.1)
        # 10 fast, 1 slow: p50 in the first bucket, p99 in the last.
        buckets = [10, 0, 1]
        assert bucket_percentile(buckets, 50, bounds) == pytest.approx(0.001)
        assert bucket_percentile(buckets, 99, bounds) == pytest.approx(0.1)

    def test_overflow_reports_last_finite_bound(self):
        bounds = (0.001, 0.01)
        buckets = [0, 0, 5]  # everything beyond the top bound
        assert bucket_percentile(buckets, 50, bounds) == pytest.approx(0.01)
