"""Property tests for repro.obs.sketch (mergeable quantile sketches)."""

import math
import pickle
import random
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    merge_rows,
    sketch_row_length,
)


def _log_uniform_samples(rng, n, low=1e-5, high=1e3):
    return [math.exp(rng.uniform(math.log(low), math.log(high))) for _ in range(n)]


def _exact_percentile(samples, p):
    """Nearest-rank percentile (the definition the sketch guarantees)."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestRecordingAndQuantiles:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.percentile(50) == 0.0
        assert sketch.min == 0.0
        assert sketch.max == 0.0
        assert sketch.mean == 0.0

    def test_single_sample_is_exact(self):
        sketch = QuantileSketch()
        sketch.record(0.123)
        for p in (0, 50, 99, 100):
            assert sketch.percentile(p) == pytest.approx(0.123, rel=1e-12)
        assert sketch.min == 0.123
        assert sketch.max == 0.123
        assert sketch.mean == pytest.approx(0.123)

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.record(0.0)
        with pytest.raises(ValueError):
            sketch.record(-1.0)
        with pytest.raises(ValueError):
            sketch.record(float("nan"))
        with pytest.raises(ValueError):
            sketch.percentile(101)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(min_value=1.0, max_value=0.5)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_relative_error_bound_across_magnitudes(self, seed):
        # Samples spanning eight decades: every percentile estimate must be
        # within the documented relative accuracy of the exact nearest-rank
        # sample value.
        rng = random.Random(seed)
        samples = _log_uniform_samples(rng, 2000)
        sketch = QuantileSketch()
        for value in samples:
            sketch.record(value)
        alpha = sketch.relative_accuracy
        for p in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = _exact_percentile(samples, p)
            estimate = sketch.percentile(p)
            assert abs(estimate - exact) <= alpha * exact * (1 + 1e-12), (
                f"p{p}: estimate {estimate} vs exact {exact}"
            )

    def test_extremes_and_sum_are_exact(self):
        sketch = QuantileSketch()
        values = [0.004, 0.2, 1.7, 0.00009]
        for value in values:
            sketch.record(value)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.sum == pytest.approx(sum(values))
        assert sketch.count == len(values)

    def test_out_of_range_values_are_clamped_not_lost(self):
        sketch = QuantileSketch(min_value=1e-3, max_value=1.0)
        sketch.record(1e-6)   # below range -> underflow bucket
        sketch.record(100.0)  # above range -> last bucket
        assert sketch.count == 2
        assert sketch.min == 1e-6
        assert sketch.max == 100.0
        # p100 stays exact thanks to the max clamp.
        assert sketch.percentile(100) == pytest.approx(100.0)


class TestMerge:
    def test_merge_commutative(self):
        rng = random.Random(7)
        a_values = _log_uniform_samples(rng, 300)
        b_values = _log_uniform_samples(rng, 500)
        ab = QuantileSketch()
        ba = QuantileSketch()
        a1, b1 = QuantileSketch(), QuantileSketch()
        for value in a_values:
            a1.record(value)
        for value in b_values:
            b1.record(value)
        ab.merge(a1)
        ab.merge(b1)
        ba.merge(b1)
        ba.merge(a1)
        assert np.array_equal(ab.to_row(), ba.to_row())

    def test_merge_associative(self):
        rng = random.Random(11)
        sketches = []
        for _ in range(3):
            sketch = QuantileSketch()
            for value in _log_uniform_samples(rng, 200):
                sketch.record(value)
            sketches.append(sketch)
        a, b, c = sketches
        left = QuantileSketch()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        bc = QuantileSketch()
        bc.merge(b)
        bc.merge(c)
        right = QuantileSketch()
        right.merge(a)
        right.merge(bc)
        left_row, right_row = left.to_row(), right.to_row()
        # Counts, extremes and every bucket are bit-identical regardless of
        # merge order; the sum cell is a float accumulation, so allow ULPs.
        assert np.array_equal(np.delete(left_row, 1), np.delete(right_row, 1))
        assert left_row[1] == pytest.approx(right_row[1], rel=1e-12)
        for p in (50, 95, 99):
            assert left.percentile(p) == right.percentile(p)

    def test_merge_equals_pooled_stream(self):
        # Merging per-worker sketches must give bit-identical buckets to one
        # sketch fed the pooled stream (counts are integral adds).
        rng = random.Random(3)
        streams = [_log_uniform_samples(rng, 400) for _ in range(4)]
        per_worker = []
        for stream in streams:
            sketch = QuantileSketch()
            for value in stream:
                sketch.record(value)
            per_worker.append(sketch)
        merged = QuantileSketch()
        for sketch in per_worker:
            merged.merge(sketch)
        pooled = QuantileSketch()
        for stream in streams:
            for value in stream:
                pooled.record(value)
        assert np.array_equal(
            merged.to_row()[4:], pooled.to_row()[4:]
        )  # identical buckets
        assert merged.count == pooled.count
        assert merged.min == pooled.min
        assert merged.max == pooled.max

    def test_merge_with_empty_preserves_extremes(self):
        sketch = QuantileSketch()
        sketch.record(0.5)
        sketch.merge(QuantileSketch())
        assert sketch.min == 0.5
        assert sketch.max == 0.5
        empty = QuantileSketch()
        empty.merge(sketch)
        assert empty.min == 0.5
        assert empty.count == 1

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.01).merge(
                QuantileSketch(relative_accuracy=0.02)
            )


class TestRowForm:
    def test_row_round_trip_is_bit_stable(self):
        rng = random.Random(5)
        sketch = QuantileSketch()
        for value in _log_uniform_samples(rng, 500):
            sketch.record(value)
        row = sketch.to_row()
        rebuilt = QuantileSketch.from_row(row)
        assert np.array_equal(rebuilt.to_row(), row)
        assert rebuilt.percentile(99) == sketch.percentile(99)

    def test_zero_row_is_valid_empty_sketch(self):
        row = np.zeros(sketch_row_length(), dtype=np.float64)
        sketch = QuantileSketch.from_row(row)
        assert sketch.count == 0
        assert sketch.percentile(99) == 0.0

    def test_shm_round_trip_and_merge_bit_stability(self):
        # serialize -> shared-memory slab -> attach -> merge: the merged row
        # must be bit-identical to merging the in-process rows directly.
        rng = random.Random(9)
        sketches = []
        for _ in range(3):
            sketch = QuantileSketch()
            for value in _log_uniform_samples(rng, 250):
                sketch.record(value)
            sketches.append(sketch)
        length = sketch_row_length()
        segment = shared_memory.SharedMemory(
            create=True, size=3 * length * np.dtype(np.float64).itemsize
        )
        try:
            slab = np.ndarray((3, length), dtype=np.float64, buffer=segment.buf)
            for index, sketch in enumerate(sketches):
                sketch.to_row(out=slab[index])
            via_shm = merge_rows([slab[i].copy() for i in range(3)])
            direct = merge_rows([sketch.to_row() for sketch in sketches])
            assert np.array_equal(via_shm, direct)
            del slab, via_shm
        finally:
            segment.close()
            segment.unlink()

    def test_attach_row_records_in_place(self):
        row = np.zeros(sketch_row_length(), dtype=np.float64)
        sketch = QuantileSketch.attach_row(row)
        sketch.record(0.010)
        sketch.record(0.020)
        assert row[0] == 2.0  # count written through to the backing row
        reread = QuantileSketch.from_row(row)
        assert reread.count == 2
        assert reread.percentile(100) == pytest.approx(0.020, rel=0.02)

    def test_attach_row_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            QuantileSketch.attach_row(np.zeros(3, dtype=np.float64))

    def test_merge_rows_requires_rows(self):
        with pytest.raises(ValueError):
            merge_rows([])


class TestPickle:
    def test_pickle_round_trip(self):
        sketch = QuantileSketch(relative_accuracy=0.02)
        for value in (0.001, 0.1, 2.0):
            sketch.record(value)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.relative_accuracy == 0.02
        assert np.array_equal(clone.to_row(), sketch.to_row())
        assert clone.percentile(50) == sketch.percentile(50)
        clone.record(0.5)  # still usable after the round trip
        assert clone.count == sketch.count + 1


class TestSnapshot:
    def test_snapshot_shape(self):
        sketch = QuantileSketch()
        sketch.record(0.004)
        snapshot = sketch.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["p50_ms"] == pytest.approx(4.0, rel=0.02)
        assert snapshot["relative_accuracy"] == DEFAULT_RELATIVE_ACCURACY
