"""Unit tests for repro.obs.slo (error budgets, burn rates, alerts)."""

import json
import logging

import pytest

from repro.obs.slo import (
    DEFAULT_ALERT_BURN_RATE,
    FAST_WINDOW_SECONDS,
    SLOW_WINDOW_SECONDS,
    SLOConfig,
    SLOEngine,
    SLOSpec,
)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSLOSpec:
    def test_defaults(self):
        spec = SLOSpec()
        assert spec.availability == 0.999
        assert spec.error_budget == pytest.approx(0.001)
        assert spec.latency_percentile == 99.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(availability=1.0)
        with pytest.raises(ValueError):
            SLOSpec(availability=0.0)
        with pytest.raises(ValueError):
            SLOSpec(latency_ms=0.0)
        with pytest.raises(ValueError):
            SLOSpec(latency_percentile=0.0)

    def test_merged_partial_override(self):
        spec = SLOSpec().merged({"latency_ms": 100})
        assert spec.latency_ms == 100.0
        assert spec.availability == 0.999  # inherited
        with pytest.raises(ValueError, match="unknown"):
            SLOSpec().merged({"latencyms": 5})


class TestSLOConfig:
    def test_from_file_with_tenant_overrides(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "default": {"availability": 0.99, "latency_ms": 500},
                    "tenants": {"model-0": {"latency_ms": 50}},
                }
            )
        )
        config = SLOConfig.from_file(path)
        assert config.default.availability == 0.99
        # Tenant override inherits the file default, not the library default.
        assert config.for_tenant("model-0").availability == 0.99
        assert config.for_tenant("model-0").latency_ms == 50.0
        assert config.for_tenant("anything-else").latency_ms == 500.0

    def test_rejects_bad_payloads(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json{")
        with pytest.raises(ValueError, match="invalid JSON"):
            SLOConfig.from_file(path)
        with pytest.raises(ValueError, match="unknown"):
            SLOConfig.from_dict({"defautl": {}})
        with pytest.raises(ValueError):
            SLOConfig.from_dict({"tenants": ["a"]})

    def test_round_trip(self):
        config = SLOConfig.from_dict(
            {"tenants": {"t": {"availability": 0.95}}}
        )
        rebuilt = SLOConfig.from_dict(config.to_dict())
        assert rebuilt.for_tenant("t").availability == 0.95


class TestBurnRates:
    def test_all_good_traffic_burns_nothing(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock)
        for _ in range(100):
            engine.record("t", ok=True, latency_s=0.001)
        snapshot = engine.snapshot()["tenants"]["t"]
        assert snapshot["windows"]["fast"]["burn_rate"] == 0.0
        assert snapshot["budget_remaining"] == 1.0
        assert snapshot["verdict"] == "ok"
        assert snapshot["latency"]["objective_met"] is True

    def test_failures_burn_budget(self):
        clock = FakeClock()
        # 99% availability -> 1% budget; 10% failures -> burn rate 10.
        engine = SLOEngine(
            config=SLOConfig(default=SLOSpec(availability=0.99)), clock=clock
        )
        for index in range(100):
            engine.record("t", ok=index % 10 != 0, latency_s=0.001)
        snapshot = engine.snapshot()["tenants"]["t"]
        assert snapshot["windows"]["fast"]["burn_rate"] == pytest.approx(10.0)
        assert snapshot["windows"]["slow"]["burn_rate"] == pytest.approx(10.0)
        assert snapshot["requests"] == 100
        assert snapshot["bad_requests"] == 10
        assert snapshot["failures"] == 10

    def test_slow_requests_spend_budget_like_failures(self):
        clock = FakeClock()
        engine = SLOEngine(
            config=SLOConfig(default=SLOSpec(latency_ms=10.0)), clock=clock
        )
        engine.record("t", ok=True, latency_s=0.5)  # slow success = bad event
        snapshot = engine.snapshot()["tenants"]["t"]
        assert snapshot["bad_requests"] == 1
        assert snapshot["failures"] == 0
        assert snapshot["latency"]["objective_met"] is False

    def test_fast_window_forgets_old_badness(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock)
        for _ in range(50):
            engine.record("t", ok=False, latency_s=0.001)
        clock.advance(FAST_WINDOW_SECONDS + 10)
        engine.record("t", ok=True, latency_s=0.001)
        snapshot = engine.snapshot()["tenants"]["t"]
        fast = snapshot["windows"]["fast"]
        assert fast["bad"] == 0
        assert fast["good"] == 1
        # The slow window still remembers.
        assert snapshot["windows"]["slow"]["bad"] == 50

    def test_slow_window_forgets_after_an_hour(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock)
        engine.record("t", ok=False, latency_s=0.001)
        clock.advance(SLOW_WINDOW_SECONDS + 120)
        engine.record("t", ok=True, latency_s=0.001)
        slow = engine.snapshot()["tenants"]["t"]["windows"]["slow"]
        assert slow["bad"] == 0
        assert slow["good"] == 1

    def test_budget_exhaustion_is_a_breach(self):
        clock = FakeClock()
        engine = SLOEngine(
            config=SLOConfig(default=SLOSpec(availability=0.9)), clock=clock
        )
        for _ in range(5):
            engine.record("t", ok=False, latency_s=0.001)
        for _ in range(5):
            engine.record("t", ok=True, latency_s=0.001)
        snapshot = engine.snapshot()["tenants"]["t"]
        # 50% bad vs a 10% budget: 5x overspent, clamped to an empty budget.
        assert snapshot["budget_remaining"] == 0.0
        assert snapshot["verdict"] == "breached"


class TestAlerting:
    def test_alert_fires_once_and_resolves(self, caplog):
        clock = FakeClock()
        engine = SLOEngine(
            config=SLOConfig(default=SLOSpec(availability=0.99)),
            clock=clock,
            alert_burn_rate=5.0,
        )
        with caplog.at_level(logging.INFO, logger="repro.serve.slo"):
            for _ in range(20):
                engine.record("t", ok=False, latency_s=0.001)
            firing = [r for r in caplog.records if "state=firing" in r.message]
            assert len(firing) == 1
            assert "tenant=t" in firing[0].message
            assert firing[0].levelno == logging.WARNING
            # Recover: outrun the fast window with good traffic.
            clock.advance(FAST_WINDOW_SECONDS + 10)
            engine.record("t", ok=True, latency_s=0.001)
            resolved = [r for r in caplog.records if "state=resolved" in r.message]
            assert len(resolved) == 1
            assert resolved[0].levelno == logging.INFO

    def test_alerting_requires_both_windows(self):
        clock = FakeClock()
        engine = SLOEngine(
            config=SLOConfig(default=SLOSpec(availability=0.99)),
            clock=clock,
            alert_burn_rate=5.0,
        )
        # Saturate the slow window with *good* traffic, let it age past the
        # fast window, then burst badness: the fast window burns hard but
        # the slow window stays below threshold -> no page.
        for _ in range(2000):
            engine.record("t", ok=True, latency_s=0.001)
        clock.advance(FAST_WINDOW_SECONDS + 10)
        for _ in range(20):
            engine.record("t", ok=False, latency_s=0.001)
        snapshot = engine.snapshot()["tenants"]["t"]
        assert snapshot["windows"]["fast"]["burn_rate"] >= 5.0
        assert snapshot["windows"]["slow"]["burn_rate"] < 5.0
        assert snapshot["alerting"] is False
        assert snapshot["verdict"] == "ok"

    def test_default_threshold(self):
        assert SLOEngine().alert_burn_rate == DEFAULT_ALERT_BURN_RATE
        with pytest.raises(ValueError):
            SLOEngine(alert_burn_rate=0.0)


class TestSnapshot:
    def test_snapshot_is_json_ready_and_sorted(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock)
        engine.record("b", ok=True, latency_s=0.002)
        engine.record("a", ok=True, latency_s=0.002)
        snapshot = engine.snapshot()
        json.dumps(snapshot)
        assert list(snapshot["tenants"]) == ["a", "b"]
        assert engine.tenant_names() == ["a", "b"]
        assert snapshot["default_spec"]["availability"] == 0.999

    def test_latency_percentiles_come_from_the_sketch(self):
        clock = FakeClock()
        engine = SLOEngine(clock=clock)
        for _ in range(99):
            engine.record("t", ok=True, latency_s=0.010)
        engine.record("t", ok=True, latency_s=1.0)
        latency = engine.snapshot()["tenants"]["t"]["latency"]
        assert latency["count"] == 100
        assert latency["p50_ms"] == pytest.approx(10.0, rel=0.02)
        assert latency["p99_ms"] == pytest.approx(10.0, rel=0.02)
        assert latency["objective_ms"] == latency["p99_ms"]
