"""Unit tests for repro.obs.summary (the trace-summary analysis)."""

import pytest

from repro.obs.summary import (
    STAGE_ORDER,
    format_trace_summary,
    summarize_spans,
    summarize_trace_file,
)
from repro.obs.trace import JsonlSink, Tracer


def _span(name, trace="t1", span="s1", parent=None, dur_ms=1.0):
    return {
        "v": 1,
        "trace": trace,
        "span": span,
        "parent": parent,
        "name": name,
        "ts": 0.0,
        "dur_ms": dur_ms,
    }


class TestSummarize:
    def test_per_stage_statistics(self):
        spans = [
            _span("request", span="a", dur_ms=10.0),
            _span("request", trace="t2", span="b", dur_ms=30.0),
            _span("validate", span="c", parent="a", dur_ms=1.0),
        ]
        summary = summarize_spans(spans)
        assert summary["traces"] == 2
        assert summary["spans"] == 3
        assert summary["orphans"] == 0
        request = summary["stages"]["request"]
        assert request["count"] == 2
        assert request["mean_ms"] == pytest.approx(20.0)
        assert request["max_ms"] == pytest.approx(30.0)
        assert request["total_ms"] == pytest.approx(40.0)

    def test_orphans_counted(self):
        spans = [
            _span("request", span="a"),
            _span("worker:score", span="b", parent="never-written"),
        ]
        assert summarize_spans(spans)["orphans"] == 1

    def test_empty_input(self):
        summary = summarize_spans([])
        assert summary == {"traces": 0, "spans": 0, "orphans": 0, "stages": {}}

    def test_round_trip_through_a_real_trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        for _ in range(3):
            with tracer.start_span("request"):
                with tracer.start_span("validate"):
                    pass
        tracer.close()
        summary = summarize_trace_file(path)
        assert summary["traces"] == 3
        assert summary["orphans"] == 0
        assert summary["stages"]["validate"]["count"] == 3


class TestFormat:
    def test_stage_ordering_is_canonical(self):
        spans = [
            _span("respond", span="a"),
            _span("zz_custom", span="b"),
            _span("request", span="c"),
        ]
        text = format_trace_summary(summarize_spans(spans))
        lines = text.splitlines()
        order = [
            name
            for name in ("request", "respond", "zz_custom")
            if any(line.startswith(name) for line in lines)
        ]
        positions = {
            name: next(i for i, line in enumerate(lines) if line.startswith(name))
            for name in order
        }
        # request (a STAGE_ORDER member) before respond, unknown stages last.
        assert positions["request"] < positions["respond"] < positions["zz_custom"]

    def test_orphans_flagged_in_caption(self):
        spans = [_span("request", span="a", parent="missing")]
        text = format_trace_summary(summarize_spans(spans))
        assert "orphan" in text

    def test_stage_order_covers_the_serving_pipeline(self):
        for stage in ("queue_wait", "dispatch", "worker:score", "merge"):
            assert stage in STAGE_ORDER
