"""Unit tests for repro.obs.trace: spans, sampling, sinks, stitching."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    JsonlSink,
    MemorySink,
    SpanContext,
    Tracer,
    configure_tracing,
    get_tracer,
    parse_trace_file,
    set_tracer,
    span_record,
)


@pytest.fixture(autouse=True)
def isolate_global_tracer():
    """Keep the process-wide tracer untouched by these tests."""
    yield
    set_tracer(None)


class TestSpanLifecycle:
    def test_root_span_emits_on_exit(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.start_span("request", attrs={"route": "/v1/predict"}) as span:
            span.set("rows", 4)
        (record,) = sink.records
        assert record["name"] == "request"
        assert record["parent"] is None
        assert record["attrs"] == {"route": "/v1/predict", "rows": 4}
        assert record["dur_ms"] >= 0.0
        assert len(record["trace"]) == 16 and len(record["span"]) == 16

    def test_nested_spans_share_trace_and_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.start_span("request") as root:
            with tracer.start_span("validate"):
                pass
        child, parent = sink.records
        assert child["name"] == "validate"
        assert child["trace"] == parent["trace"] == root.trace_id
        assert child["parent"] == parent["span"]

    def test_explicit_parent_context_crosses_threads(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.start_span("request") as root:
            ctx = root.context

            def worker():
                with tracer.start_span("queue_wait", parent=ctx):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child = next(r for r in sink.records if r["name"] == "queue_wait")
        assert child["trace"] == root.trace_id
        assert child["parent"] == root.span_id

    def test_exception_is_recorded_and_propagates(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.start_span("request"):
                raise RuntimeError("boom")
        (record,) = sink.records
        assert record["attrs"]["error"] == "RuntimeError"

    def test_ambient_stack_pops_after_exit(self):
        tracer = Tracer(MemorySink())
        with tracer.start_span("request"):
            assert tracer.current_context() is not None
        assert tracer.current_context() is None

    def test_bad_parent_type_rejected(self):
        tracer = Tracer(MemorySink())
        with pytest.raises(TypeError):
            tracer.start_span("x", parent="not-a-context")


class TestSampling:
    def test_disabled_tracer_returns_the_shared_null_span(self):
        tracer = Tracer()  # no sink
        span = tracer.start_span("request")
        assert span is NULL_SPAN
        assert not tracer.enabled
        # The null span is inert: context-manages, ignores attributes.
        with span as inner:
            inner.set("anything", 1)
        assert span.context is None and span.sampled is False

    def test_sample_rate_zero_records_nothing(self):
        sink = MemorySink()
        tracer = Tracer(sink, sample_rate=0.0)
        for _ in range(20):
            with tracer.start_span("request"):
                pass
        assert sink.records == []

    def test_sampling_is_decided_at_the_root_only(self):
        sink = MemorySink()
        tracer = Tracer(sink, sample_rate=0.5, seed=7)
        for _ in range(50):
            with tracer.start_span("request") as root:
                # Children exist iff their root was sampled.
                with tracer.start_span("validate") as child:
                    assert child.sampled == root.sampled
        roots = [r for r in sink.records if r["parent"] is None]
        children = [r for r in sink.records if r["parent"] is not None]
        assert 0 < len(roots) < 50
        assert len(children) == len(roots)

    def test_rejects_out_of_range_sample_rate(self):
        with pytest.raises(ValueError):
            Tracer(MemorySink(), sample_rate=1.5)


class TestStitching:
    def test_span_record_and_emit_record_round_trip(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        parent = SpanContext("a" * 16, "b" * 16)
        record = span_record(
            "worker:score", parent, start_time=123.0, duration_s=0.004,
            attrs={"rows": 2}, pid=999,
        )
        tracer.emit_record(record)
        (written,) = sink.records
        assert written["trace"] == "a" * 16
        assert written["parent"] == "b" * 16
        assert written["dur_ms"] == pytest.approx(4.0)
        assert written["pid"] == 999

    def test_emit_span_is_noop_without_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit_span("queue_wait", None, start_time=0.0, duration_s=0.001)
        assert sink.records == []
        tracer.emit_span(
            "queue_wait", SpanContext("t" * 16, "s" * 16), 0.0, 0.001
        )
        assert len(sink.records) == 1


class TestJsonlSinkAndParsing:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        with tracer.start_span("request"):
            with tracer.start_span("respond"):
                pass
        tracer.close()
        spans = parse_trace_file(path)
        assert {span["name"] for span in spans} == {"request", "respond"}
        assert all(span["v"] == 1 for span in spans)

    def test_write_after_close_is_safe(self, tmp_path):
        sink = JsonlSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.write({"v": 1})  # must not raise

    def test_parse_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            parse_trace_file(path)

    def test_parse_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(json.dumps({"trace": "t", "span": "s"}) + "\n")
        with pytest.raises(ValueError, match="missing"):
            parse_trace_file(path)


class TestGlobalTracer:
    def test_default_tracer_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        set_tracer(None)
        assert get_tracer().enabled is False

    def test_env_variable_enables_tracing(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        set_tracer(None)
        tracer = get_tracer()
        assert tracer.enabled and tracer.sample_rate == 0.25
        tracer.close()

    def test_configure_tracing_installs_globally(self, tmp_path):
        tracer = configure_tracing(tmp_path / "cfg.jsonl", sample_rate=0.5)
        assert get_tracer() is tracer
        tracer.close()


class TestMemorySinkRetention:
    def test_keeps_only_the_most_recent_records(self):
        sink = MemorySink(max_records=3)
        for index in range(5):
            sink.write({"name": f"span-{index}"})
        assert [r["name"] for r in sink.records] == ["span-2", "span-3", "span-4"]
        assert sink.dropped == 2

    def test_default_cap_is_bounded(self):
        assert MemorySink().max_records == MemorySink.DEFAULT_MAX_RECORDS

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError, match="max_records"):
            MemorySink(max_records=0)
