"""Unit tests for repro.hdc.packing."""

import numpy as np
import pytest

from repro.hdc.hypervector import hamming_distance, random_hypervectors
from repro.hdc.packing import PackedHypervectors, pack_bipolar, unpack_bipolar


class TestPackUnpack:
    def test_roundtrip_multiple_of_64(self):
        vectors = random_hypervectors(4, 256, seed=0)
        np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(vectors)), vectors)

    def test_roundtrip_non_multiple_of_64(self):
        vectors = random_hypervectors(3, 100, seed=1)
        np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(vectors)), vectors)

    def test_word_count(self):
        packed = pack_bipolar(random_hypervectors(2, 130, seed=2))
        assert packed.words.shape == (2, 3)
        assert packed.dimension == 130

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.zeros((2, 64)))

    def test_single_vector_promoted(self):
        packed = pack_bipolar(random_hypervectors(1, 64, seed=3)[0])
        assert len(packed) == 1


class TestPackedHamming:
    def test_matches_dense_hamming(self):
        queries = random_hypervectors(5, 333, seed=4)
        classes = random_hypervectors(3, 333, seed=5)
        dense = hamming_distance(queries, classes)
        packed = pack_bipolar(queries).hamming_distance(pack_bipolar(classes))
        np.testing.assert_allclose(packed, dense, atol=1e-12)

    def test_zero_distance_to_self(self):
        vectors = random_hypervectors(2, 128, seed=6)
        packed = pack_bipolar(vectors)
        distances = packed.hamming_distance(packed)
        assert distances[0, 0] == 0.0
        assert distances[1, 1] == 0.0

    def test_dimension_mismatch(self):
        a = pack_bipolar(random_hypervectors(1, 64, seed=7))
        b = pack_bipolar(random_hypervectors(1, 128, seed=8))
        with pytest.raises(ValueError):
            a.hamming_distance(b)

    def test_storage_bytes(self):
        packed = pack_bipolar(random_hypervectors(4, 256, seed=9))
        assert packed.storage_bytes == 4 * 4 * 8  # 4 rows x 4 words x 8 bytes


class TestPackedConstruction:
    def test_bad_word_shape(self):
        with pytest.raises(ValueError):
            PackedHypervectors(words=np.zeros((2, 3), dtype=np.uint64), dimension=64)

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            PackedHypervectors(words=np.zeros(3, dtype=np.uint64), dimension=64)
