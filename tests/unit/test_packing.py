"""Unit tests for repro.hdc.packing."""

import numpy as np
import pytest

from repro.hdc.hypervector import hamming_distance, random_hypervectors
from repro.hdc.packing import (
    PackedHypervectors,
    _popcount,
    _popcount_table,
    pack_bipolar,
    pack_bits,
    unpack_bipolar,
)


class TestPackUnpack:
    def test_roundtrip_multiple_of_64(self):
        vectors = random_hypervectors(4, 256, seed=0)
        np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(vectors)), vectors)

    def test_roundtrip_non_multiple_of_64(self):
        vectors = random_hypervectors(3, 100, seed=1)
        np.testing.assert_array_equal(unpack_bipolar(pack_bipolar(vectors)), vectors)

    def test_word_count(self):
        packed = pack_bipolar(random_hypervectors(2, 130, seed=2))
        assert packed.words.shape == (2, 3)
        assert packed.dimension == 130

    def test_rejects_non_bipolar(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.zeros((2, 64)))

    def test_single_vector_promoted(self):
        packed = pack_bipolar(random_hypervectors(1, 64, seed=3)[0])
        assert len(packed) == 1


class TestPackedHamming:
    def test_matches_dense_hamming(self):
        queries = random_hypervectors(5, 333, seed=4)
        classes = random_hypervectors(3, 333, seed=5)
        dense = hamming_distance(queries, classes)
        packed = pack_bipolar(queries).hamming_distance(pack_bipolar(classes))
        np.testing.assert_allclose(packed, dense, atol=1e-12)

    def test_zero_distance_to_self(self):
        vectors = random_hypervectors(2, 128, seed=6)
        packed = pack_bipolar(vectors)
        distances = packed.hamming_distance(packed)
        assert distances[0, 0] == 0.0
        assert distances[1, 1] == 0.0

    def test_dimension_mismatch(self):
        a = pack_bipolar(random_hypervectors(1, 64, seed=7))
        b = pack_bipolar(random_hypervectors(1, 128, seed=8))
        with pytest.raises(ValueError):
            a.hamming_distance(b)

    def test_storage_bytes(self):
        packed = pack_bipolar(random_hypervectors(4, 256, seed=9))
        assert packed.storage_bytes == 4 * 4 * 8  # 4 rows x 4 words x 8 bytes


class TestBitDifferences:
    def test_counts_are_raw_bit_differences(self):
        queries = random_hypervectors(6, 200, seed=10)
        classes = random_hypervectors(4, 200, seed=11)
        counts = pack_bipolar(queries).bit_differences(pack_bipolar(classes))
        assert counts.dtype == np.int64
        expected = (queries[:, None, :] != classes[None, :, :]).sum(axis=2)
        np.testing.assert_array_equal(counts, expected)

    def test_blocked_path_matches_single_block(self):
        # Enough rows that the block loop takes more than one iteration even
        # with a tiny block budget forced via a large "other" side.
        queries = random_hypervectors(300, 256, seed=12)
        classes = random_hypervectors(50, 256, seed=13)
        packed_queries = pack_bipolar(queries)
        packed_classes = pack_bipolar(classes)
        counts = packed_queries.bit_differences(packed_classes)
        dense = hamming_distance(queries, classes) * 256
        np.testing.assert_allclose(counts, dense, atol=1e-9)

    def test_dimension_mismatch(self):
        a = pack_bipolar(random_hypervectors(1, 64, seed=14))
        b = pack_bipolar(random_hypervectors(1, 128, seed=15))
        with pytest.raises(ValueError):
            a.bit_differences(b)


class TestPopcountParity:
    def test_table_matches_native(self):
        words = pack_bipolar(random_hypervectors(8, 1000, seed=16)).words
        np.testing.assert_array_equal(
            np.asarray(_popcount(words), dtype=np.uint32), _popcount_table(words)
        )


class TestPackBits:
    def test_matches_pack_bipolar(self):
        vectors = random_hypervectors(5, 333, seed=17)
        np.testing.assert_array_equal(
            pack_bits(vectors > 0, 333).words, pack_bipolar(vectors).words
        )

    def test_accepts_uint8_bits(self):
        bits = (random_hypervectors(3, 100, seed=18) > 0).astype(np.uint8)
        packed = pack_bits(bits)
        assert packed.dimension == 100
        np.testing.assert_array_equal(
            unpack_bipolar(packed), np.where(bits, 1, -1).astype(np.int8)
        )

    def test_any_nonzero_counts_as_set(self):
        # Values that a uint8 cast would truncate to zero must still set bits.
        bits = np.array([[256, 0.5, 2, 0, -1]], dtype=object).astype(np.float64)
        packed = pack_bits(bits)
        np.testing.assert_array_equal(
            unpack_bipolar(packed)[0], np.array([1, 1, 1, -1, 1], dtype=np.int8)
        )


class TestPackedConstruction:
    def test_bad_word_shape(self):
        with pytest.raises(ValueError):
            PackedHypervectors(words=np.zeros((2, 3), dtype=np.uint64), dimension=64)

    def test_bad_rank(self):
        with pytest.raises(ValueError):
            PackedHypervectors(words=np.zeros(3, dtype=np.uint64), dimension=64)
