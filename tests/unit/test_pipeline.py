"""Unit tests for repro.classifiers.pipeline."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import RecordEncoder


class TestHDCPipeline:
    def test_fit_predict_with_baseline(self, small_problem):
        pipeline = HDCPipeline(
            RecordEncoder(dimension=1024, num_levels=16, seed=0), BaselineHDC(seed=0)
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        accuracy = pipeline.score(
            small_problem["test_features"], small_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_fit_predict_with_lehdc(self, small_problem):
        config = LeHDCConfig(epochs=10, batch_size=32, dropout_rate=0.2, weight_decay=0.01)
        pipeline = HDCPipeline(
            RecordEncoder(dimension=512, num_levels=16, seed=1),
            LeHDCClassifier(config=config, seed=1),
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        accuracy = pipeline.score(
            small_problem["test_features"], small_problem["test_labels"]
        )
        assert accuracy > 0.5

    def test_predict_before_fit_raises(self, small_problem):
        pipeline = HDCPipeline(
            RecordEncoder(dimension=256, seed=2), BaselineHDC(seed=2)
        )
        with pytest.raises(RuntimeError):
            pipeline.predict(small_problem["test_features"])

    def test_exposes_class_hypervectors(self, small_problem):
        pipeline = HDCPipeline(
            RecordEncoder(dimension=256, num_levels=8, seed=3), BaselineHDC(seed=3)
        )
        assert pipeline.class_hypervectors_ is None
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        assert pipeline.class_hypervectors_.shape == (
            small_problem["num_classes"],
            256,
        )

    def test_reuses_prefitted_encoder(self, small_problem):
        encoder = RecordEncoder(dimension=256, num_levels=8, seed=4)
        encoder.fit(small_problem["train_features"])
        position_vectors_before = encoder.position_memory.vectors.copy()
        pipeline = HDCPipeline(encoder, BaselineHDC(seed=4))
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        np.testing.assert_array_equal(
            encoder.position_memory.vectors, position_vectors_before
        )

    def test_predict_batch_labels_and_scores(self, small_problem):
        pipeline = HDCPipeline(
            RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=6),
            BaselineHDC(seed=6),
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        labels, scores = pipeline.predict_batch(small_problem["test_features"])
        np.testing.assert_array_equal(
            labels, pipeline.predict(small_problem["test_features"])
        )
        assert scores.shape == labels.shape
        # The winning score must be each sample's row maximum.
        encoded = pipeline.encoder.encode(small_problem["test_features"])
        all_scores = pipeline.classifier.decision_scores(encoded)
        np.testing.assert_array_equal(scores, all_scores.max(axis=1))

    def test_top_k_ordering_and_clipping(self, small_problem):
        pipeline = HDCPipeline(
            RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=7),
            BaselineHDC(seed=7),
        )
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        labels, scores = pipeline.top_k(small_problem["test_features"], k=3)
        assert labels.shape == (small_problem["test_features"].shape[0], 3)
        assert np.all(np.diff(scores, axis=1) <= 0)
        np.testing.assert_array_equal(
            labels[:, 0], pipeline.predict(small_problem["test_features"])
        )
        # k above the class count is clipped.
        clipped, _ = pipeline.top_k(small_problem["test_features"], k=99)
        assert clipped.shape[1] == small_problem["num_classes"]
        with pytest.raises(ValueError):
            pipeline.top_k(small_problem["test_features"], k=0)

    def test_batch_apis_require_fit(self, small_problem):
        pipeline = HDCPipeline(RecordEncoder(dimension=256, seed=8), BaselineHDC(seed=8))
        with pytest.raises(RuntimeError):
            pipeline.predict_batch(small_problem["test_features"])
        with pytest.raises(RuntimeError):
            pipeline.top_k(small_problem["test_features"])

    def test_forwards_fit_kwargs(self, small_problem):
        from repro.classifiers.retraining import RetrainingHDC

        encoder = RecordEncoder(dimension=256, num_levels=8, seed=5)
        encoder.fit(small_problem["train_features"])
        test_encoded = encoder.encode(small_problem["test_features"])
        pipeline = HDCPipeline(encoder, RetrainingHDC(iterations=3, epsilon=0.0, seed=5))
        pipeline.fit(
            small_problem["train_features"],
            small_problem["train_labels"],
            validation_hypervectors=test_encoded,
            validation_labels=small_problem["test_labels"],
        )
        assert len(pipeline.classifier.history_.test_accuracy) == 3
