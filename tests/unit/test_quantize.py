"""Unit tests for repro.hdc.quantize."""

import numpy as np
import pytest

from repro.hdc.quantize import QuantileQuantizer, UniformQuantizer


class TestUniformQuantizer:
    def test_levels_within_range(self):
        data = np.random.default_rng(0).uniform(0, 1, size=(100, 5))
        levels = UniformQuantizer(8).fit_transform(data)
        assert levels.min() >= 0
        assert levels.max() <= 7

    def test_monotonic_in_value(self):
        data = np.linspace(0, 1, 50).reshape(-1, 1)
        levels = UniformQuantizer(10).fit_transform(data)
        assert np.all(np.diff(levels[:, 0]) >= 0)

    def test_extremes_map_to_extreme_levels(self):
        data = np.array([[0.0], [1.0]])
        quantizer = UniformQuantizer(4).fit(data)
        levels = quantizer.transform(data)
        assert levels[0, 0] == 0
        assert levels[1, 0] == 3

    def test_constant_feature_maps_to_zero(self):
        data = np.full((10, 3), 2.5)
        levels = UniformQuantizer(8).fit_transform(data)
        assert np.all(levels == 0)

    def test_out_of_range_test_values_clipped(self):
        train = np.array([[0.0], [1.0]])
        quantizer = UniformQuantizer(4).fit(train)
        levels = quantizer.transform(np.array([[-5.0], [5.0]]))
        assert levels[0, 0] == 0
        assert levels[1, 0] == 3

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            UniformQuantizer(4).transform(np.zeros((2, 2)))

    def test_column_mismatch(self):
        quantizer = UniformQuantizer(4).fit(np.zeros((5, 3)) + np.arange(3))
        with pytest.raises(ValueError):
            quantizer.transform(np.zeros((2, 4)))


class TestQuantileQuantizer:
    def test_equal_frequency_bins(self):
        data = np.random.default_rng(1).normal(size=(1000, 1))
        levels = QuantileQuantizer(4).fit_transform(data)
        counts = np.bincount(levels[:, 0], minlength=4)
        # Each of the four bins should hold roughly a quarter of the samples.
        assert counts.min() > 200
        assert counts.max() < 300

    def test_levels_within_range(self):
        data = np.random.default_rng(2).exponential(size=(200, 3))
        levels = QuantileQuantizer(6).fit_transform(data)
        assert levels.min() >= 0
        assert levels.max() <= 5

    def test_single_level(self):
        data = np.random.default_rng(3).normal(size=(50, 2))
        levels = QuantileQuantizer(1).fit_transform(data)
        assert np.all(levels == 0)

    def test_monotonic_in_value(self):
        data = np.linspace(-3, 3, 100).reshape(-1, 1)
        levels = QuantileQuantizer(5).fit_transform(data)
        assert np.all(np.diff(levels[:, 0]) >= 0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantileQuantizer(4).transform(np.zeros((2, 2)))
