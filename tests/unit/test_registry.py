"""Unit tests for repro.datasets.registry."""

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    PAPER_TABLE1,
    get_dataset,
    list_datasets,
)


class TestRegistryContents:
    def test_all_six_paper_benchmarks_present(self):
        assert list_datasets() == [
            "mnist",
            "fashion_mnist",
            "cifar10",
            "ucihar",
            "isolet",
            "pamap",
        ]

    def test_paper_rows_attached(self):
        for name, spec in DATASET_SPECS.items():
            assert spec.paper_rows == PAPER_TABLE1[name]

    def test_class_counts_match_real_datasets(self):
        assert DATASET_SPECS["mnist"].num_classes == 10
        assert DATASET_SPECS["fashion_mnist"].num_classes == 10
        assert DATASET_SPECS["cifar10"].num_classes == 10
        assert DATASET_SPECS["ucihar"].num_classes == 6
        assert DATASET_SPECS["isolet"].num_classes == 26
        assert DATASET_SPECS["pamap"].num_classes == 12


class TestGetDataset:
    def test_tiny_profile_shapes(self):
        data = get_dataset("mnist", profile="tiny", seed=0, prefer_real=False)
        assert data.num_features == 196
        assert data.num_classes == 10
        assert data.num_train < 500

    def test_small_profile_matches_spec(self):
        data = get_dataset("ucihar", profile="small", seed=0, prefer_real=False)
        assert data.num_train == DATASET_SPECS["ucihar"].train_size
        assert data.num_test == DATASET_SPECS["ucihar"].test_size

    def test_cifar_has_three_channels_worth_of_features(self):
        data = get_dataset("cifar10", profile="tiny", seed=0, prefer_real=False)
        assert data.num_features == 192

    def test_name_normalisation(self):
        data = get_dataset("Fashion-MNIST", profile="tiny", seed=0, prefer_real=False)
        assert data.name == "fashion_mnist"

    def test_reproducible_for_same_seed(self):
        a = get_dataset("pamap", profile="tiny", seed=3, prefer_real=False)
        b = get_dataset("pamap", profile="tiny", seed=3, prefer_real=False)
        np.testing.assert_array_equal(a.train_features, b.train_features)

    def test_different_seed_changes_data(self):
        a = get_dataset("pamap", profile="tiny", seed=3, prefer_real=False)
        b = get_dataset("pamap", profile="tiny", seed=4, prefer_real=False)
        assert not np.array_equal(a.train_features, b.train_features)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_dataset("imagenet")

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_dataset("mnist", profile="huge")

    def test_metadata_records_substitution(self):
        data = get_dataset("isolet", profile="tiny", seed=0, prefer_real=False)
        assert data.metadata["source"] == "synthetic"
        assert "ISOLET" in data.metadata["substitutes_for"]
