"""Unit tests for repro.eval.reports."""

import numpy as np
import pytest

from repro.eval.reports import classification_report, compare_per_class


class TestClassificationReport:
    def test_perfect_predictions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        report = classification_report(labels, labels)
        assert report.accuracy == 1.0
        assert report.macro_f1 == 1.0
        for entry in report.classes:
            assert entry.precision == 1.0
            assert entry.recall == 1.0
            assert entry.support == 2

    def test_known_confusion(self):
        # Class 0: 2 correct of 3 -> recall 2/3; predictions of 0: 2 of 2 -> precision 1.
        labels = np.array([0, 0, 0, 1, 1, 1])
        predictions = np.array([0, 0, 1, 1, 1, 1])
        report = classification_report(predictions, labels)
        class0 = report.classes[0]
        class1 = report.classes[1]
        assert class0.recall == pytest.approx(2 / 3)
        assert class0.precision == pytest.approx(1.0)
        assert class1.recall == pytest.approx(1.0)
        assert class1.precision == pytest.approx(3 / 4)
        assert report.accuracy == pytest.approx(5 / 6)

    def test_absent_class_has_zero_scores(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([0, 0, 1, 1])
        report = classification_report(predictions, labels, num_classes=3)
        assert report.classes[2].support == 0
        assert report.classes[2].f1 == 0.0

    def test_weighted_f1_respects_support(self):
        # A majority class classified perfectly and a minority class missed
        # entirely: weighted F1 must sit close to the majority's score.
        labels = np.array([0] * 9 + [1])
        predictions = np.array([0] * 10)
        report = classification_report(predictions, labels)
        assert report.weighted_f1 > 0.8
        assert report.macro_f1 < 0.6

    def test_to_text_contains_rows(self):
        labels = np.array([0, 1, 1, 0])
        report = classification_report(labels, labels)
        text = report.to_text(class_names=["walking", "sitting"])
        assert "walking" in text
        assert "macro avg" in text
        assert "accuracy" in text


class TestComparePerClass:
    def test_side_by_side(self):
        labels = np.array([0, 0, 1, 1])
        good = classification_report(labels, labels)
        bad = classification_report(np.array([1, 1, 0, 0]), labels)
        text = compare_per_class({"good": good, "bad": bad}, metric="recall")
        assert "good" in text and "bad" in text
        assert "1.0000" in text and "0.0000" in text

    def test_invalid_metric(self):
        labels = np.array([0, 1])
        report = classification_report(labels, labels)
        with pytest.raises(ValueError):
            compare_per_class({"a": report}, metric="auc")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_per_class({})


class TestTrainingTimingReport:
    def test_renders_histories_and_sequences(self):
        from repro.classifiers.retraining import RetrainingHistory
        from repro.eval.reports import training_timing_report

        history = RetrainingHistory()
        history.train_accuracy.extend([0.5, 0.6])
        history.update_fraction.extend([0.1, 0.05])
        history.iteration_seconds.extend([0.25, 0.75])
        table = training_timing_report(
            {"retraining": history, "raw": [1.0, 1.0, 2.0]}, footnote="note"
        )
        assert "retraining" in table and "raw" in table
        assert "1.000" in table  # retraining total
        assert "4.000" in table  # raw total
        assert table.rstrip().endswith("note")

    def test_empty_inputs_rejected(self):
        from repro.eval.reports import training_timing_report

        with pytest.raises(ValueError, match="non-empty"):
            training_timing_report({})
        with pytest.raises(ValueError, match="iteration_seconds"):
            training_timing_report({"empty": []})
