"""Unit tests for repro.classifiers.retraining."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.retraining import RetrainingHDC, RetrainingHistory


class TestRetrainingHDC:
    def test_improves_or_matches_baseline_train_accuracy(self, encoded_problem):
        baseline = BaselineHDC(seed=0).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        retrained = RetrainingHDC(iterations=10, seed=0).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        baseline_train = baseline.score(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        retrained_train = retrained.score(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        assert retrained_train >= baseline_train - 0.02

    def test_history_recorded(self, encoded_problem):
        model = RetrainingHDC(iterations=5, seed=1)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert isinstance(model.history_, RetrainingHistory)
        assert 1 <= model.history_.iterations <= 5
        assert len(model.history_.update_fraction) == model.history_.iterations

    def test_validation_trajectory_recorded(self, encoded_problem):
        model = RetrainingHDC(iterations=4, epsilon=0.0, seed=2)
        model.fit(
            encoded_problem["train_hypervectors"],
            encoded_problem["train_labels"],
            validation_hypervectors=encoded_problem["test_hypervectors"],
            validation_labels=encoded_problem["test_labels"],
        )
        assert len(model.history_.test_accuracy) == model.history_.iterations

    def test_early_stop_on_convergence(self, encoded_problem):
        # A very large epsilon forces the convergence criterion to trigger
        # immediately after the second iteration.
        model = RetrainingHDC(iterations=50, epsilon=1.0, seed=3)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.history_.iterations <= 2

    def test_validation_args_must_come_together(self, encoded_problem):
        model = RetrainingHDC(iterations=2, seed=4)
        with pytest.raises(ValueError):
            model.fit(
                encoded_problem["train_hypervectors"],
                encoded_problem["train_labels"],
                validation_hypervectors=encoded_problem["test_hypervectors"],
            )

    def test_nonbinary_state_exposed(self, encoded_problem):
        model = RetrainingHDC(iterations=3, seed=5)
        model.fit(encoded_problem["train_hypervectors"], encoded_problem["train_labels"])
        assert model.nonbinary_class_hypervectors_.shape == model.class_hypervectors_.shape

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetrainingHDC(iterations=0)
        with pytest.raises(ValueError):
            RetrainingHDC(learning_rate=0.0)
        with pytest.raises(ValueError):
            RetrainingHDC(first_iteration_learning_rate=-1.0)
        with pytest.raises(ValueError):
            RetrainingHDC(epsilon=-0.5)

    def test_no_shuffle_is_deterministic(self, encoded_problem):
        a = RetrainingHDC(iterations=3, shuffle=False, tie_break="positive", seed=6).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        b = RetrainingHDC(iterations=3, shuffle=False, tie_break="positive", seed=7).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        np.testing.assert_array_equal(a.class_hypervectors_, b.class_hypervectors_)
