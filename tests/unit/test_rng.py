"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=20)
        b = ensure_rng(2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        generators = spawn_rngs(0, 3)
        assert len(generators) == 3
        draws = [g.integers(0, 1_000_000, size=5) for g in generators]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        first = [g.integers(0, 100, size=3) for g in spawn_rngs(9, 2)]
        second = [g.integers(0, 100, size=3) for g in spawn_rngs(9, 2)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestRngMixin:
    def test_lazy_construction_and_reseed(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=5)
        first = thing.rng.integers(0, 100, size=4)
        thing.reseed(5)
        second = thing.rng.integers(0, 100, size=4)
        np.testing.assert_array_equal(first, second)

    def test_shared_generator(self):
        class Thing(RngMixin):
            pass

        generator = np.random.default_rng(3)
        thing = Thing(seed=generator)
        assert thing.rng is generator
