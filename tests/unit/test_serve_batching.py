"""Unit tests for repro.serve.batching (the micro-batching scheduler)."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.serve.batching import BatchScheduler
from repro.serve.engine import PackedInferenceEngine
from repro.serve.metrics import ModelMetrics


@pytest.fixture(scope="module")
def engine(small_problem):
    encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=0)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return PackedInferenceEngine(pipeline, name="batch-test")


class _CountingEngine:
    """Wraps an engine, recording the batch size of every top_k call."""

    def __init__(self, engine):
        self._engine = engine
        self.batch_sizes = []
        self._lock = threading.Lock()

    def top_k(self, features, k):
        with self._lock:
            self.batch_sizes.append(features.shape[0])
        return self._engine.top_k(features, k=k)


class TestCorrectness:
    def test_scheduled_predictions_match_engine(self, engine, small_problem):
        queries = small_problem["test_features"][:20]
        expected = engine.predict(queries)
        with BatchScheduler(engine, max_batch_size=8, max_wait_ms=1.0) as scheduler:
            got = [scheduler.predict(row) for row in queries]
        np.testing.assert_array_equal(got, expected)

    def test_top_k_future_payload(self, engine, small_problem):
        row = small_problem["test_features"][0]
        with BatchScheduler(engine, max_batch_size=4, max_wait_ms=1.0) as scheduler:
            labels, scores = scheduler.top_k(row, k=3)
        expected_labels, expected_scores = engine.top_k(row[None, :], k=3)
        np.testing.assert_array_equal(labels, expected_labels[0])
        np.testing.assert_array_equal(scores, expected_scores[0])

    def test_mixed_top_k_in_one_batch(self, engine, small_problem):
        queries = small_problem["test_features"][:6]
        with BatchScheduler(engine, max_batch_size=8, max_wait_ms=50.0) as scheduler:
            futures = [
                scheduler.submit(row, top_k=k)
                for row, k in zip(queries, [1, 2, 3, 1, 4, 2])
            ]
            results = [future.result(timeout=10) for future in futures]
        for (labels, scores), k in zip(results, [1, 2, 3, 1, 4, 2]):
            assert labels.shape == (k,)
            assert scores.shape == (k,)


class TestCoalescing:
    def test_concurrent_submits_coalesce(self, engine, small_problem):
        counting = _CountingEngine(engine)
        queries = small_problem["test_features"][:32]
        with BatchScheduler(counting, max_batch_size=16, max_wait_ms=50.0) as scheduler:
            futures = [scheduler.submit(row) for row in queries]
            for future in futures:
                future.result(timeout=10)
        assert max(counting.batch_sizes) > 1
        assert sum(counting.batch_sizes) == 32

    def test_max_batch_size_respected(self, engine, small_problem):
        counting = _CountingEngine(engine)
        queries = small_problem["test_features"][:20]
        with BatchScheduler(counting, max_batch_size=4, max_wait_ms=50.0) as scheduler:
            futures = [scheduler.submit(row) for row in queries]
            for future in futures:
                future.result(timeout=10)
        assert max(counting.batch_sizes) <= 4

    def test_max_wait_flushes_partial_batch(self, engine, small_problem):
        # One lone request must not wait for a full batch: with a large
        # max_batch_size and a short max_wait the result arrives promptly.
        with BatchScheduler(engine, max_batch_size=1024, max_wait_ms=5.0) as scheduler:
            started = time.monotonic()
            scheduler.predict(small_problem["test_features"][0], timeout=10)
            elapsed = time.monotonic() - started
        assert elapsed < 5.0  # far below any full-batch wait

    def test_concurrent_callers_under_thread_pool(self, engine, small_problem):
        queries = small_problem["test_features"][:40]
        expected = engine.predict(queries)
        metrics = ModelMetrics()
        with BatchScheduler(
            engine, max_batch_size=8, max_wait_ms=20.0, num_workers=2, metrics=metrics
        ) as scheduler:
            with ThreadPoolExecutor(max_workers=8) as pool:
                got = list(pool.map(scheduler.predict, queries))
        np.testing.assert_array_equal(got, expected)
        distribution = metrics.batch_size_distribution
        assert sum(size * count for size, count in distribution.items()) == 40
        assert max(distribution) > 1


class TestLifecycleAndErrors:
    def test_submit_after_stop_raises(self, engine, small_problem):
        scheduler = BatchScheduler(engine, max_batch_size=4, max_wait_ms=1.0)
        scheduler.stop()
        with pytest.raises(RuntimeError):
            scheduler.submit(small_problem["test_features"][0])

    def test_stop_is_idempotent(self, engine):
        scheduler = BatchScheduler(engine, max_batch_size=4, max_wait_ms=1.0)
        scheduler.stop()
        scheduler.stop()

    def test_engine_error_propagates_to_futures(self, small_problem):
        class Broken:
            def top_k(self, features, k):
                raise RuntimeError("engine exploded")

        metrics = ModelMetrics()
        scheduler = BatchScheduler(
            Broken(), max_batch_size=4, max_wait_ms=1.0, metrics=metrics
        )
        try:
            future = scheduler.submit(small_problem["test_features"][0])
            with pytest.raises(RuntimeError, match="engine exploded"):
                future.result(timeout=10)
            assert metrics.errors == 1
        finally:
            scheduler.stop()

    def test_malformed_request_does_not_poison_batch(self, engine, small_problem):
        # A wrong-width sample coalesced with valid ones must fail alone;
        # the valid requests in the same batch still get answers.
        good_rows = small_problem["test_features"][:3]
        bad_row = np.zeros(5)  # model expects 24 features
        with BatchScheduler(engine, max_batch_size=8, max_wait_ms=100.0) as scheduler:
            futures = [scheduler.submit(row) for row in good_rows]
            bad_future = scheduler.submit(bad_row)
            results = [future.result(timeout=10) for future in futures]
            with pytest.raises(ValueError):
                bad_future.result(timeout=10)
        got = [labels[0] for labels, _ in results]
        np.testing.assert_array_equal(got, engine.predict(good_rows))

    def test_stop_never_leaves_hanging_futures(self, engine, small_problem):
        # Requests queued behind an in-flight batch when stop() lands either
        # run or fail — none may hang forever.
        class Slow:
            def top_k(self, features, k):
                time.sleep(0.05)
                return engine.top_k(features, k=k)

        scheduler = BatchScheduler(Slow(), max_batch_size=1, max_wait_ms=0.0)
        futures = [
            scheduler.submit(row) for row in small_problem["test_features"][:10]
        ]
        scheduler.stop()
        for future in futures:
            try:
                labels, _ = future.result(timeout=10)
                assert labels.shape == (1,)
            except RuntimeError as error:
                assert "stopped" in str(error)

    def test_rejects_bad_arguments(self, engine, small_problem):
        with pytest.raises(ValueError):
            BatchScheduler(engine, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(engine, max_wait_ms=-1)
        with BatchScheduler(engine, max_batch_size=2, max_wait_ms=1.0) as scheduler:
            with pytest.raises(ValueError):
                scheduler.submit(small_problem["test_features"][:2])  # 2-D
            with pytest.raises(ValueError):
                scheduler.submit(small_problem["test_features"][0], top_k=0)


class TestConcurrentSubmitters:
    def test_many_threads_all_get_their_own_answer(self, engine, small_problem):
        # The concurrency satellite: N submitter threads racing the collector
        # must each receive the prediction for *their* sample, with no swaps,
        # drops, or hangs — across enough rounds to shuffle batch formation.
        queries = small_problem["test_features"][:32]
        expected = engine.predict(queries)
        with BatchScheduler(engine, max_batch_size=8, max_wait_ms=1.0) as scheduler:
            def one_client(index):
                results = []
                for _ in range(5):
                    results.append(scheduler.predict(queries[index], timeout=30))
                return results

            with ThreadPoolExecutor(max_workers=16) as pool:
                futures = {
                    index: pool.submit(one_client, index)
                    for index in range(len(queries))
                }
                for index, future in futures.items():
                    assert future.result() == [int(expected[index])] * 5

    def test_concurrent_mixed_top_k(self, engine, small_problem):
        queries = small_problem["test_features"][:16]
        labels_k3, _ = engine.top_k(queries, k=3)
        with BatchScheduler(engine, max_batch_size=4, max_wait_ms=1.0) as scheduler:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [
                    pool.submit(scheduler.top_k, queries[index], 1 + index % 3)
                    for index in range(len(queries))
                ]
                for index, future in enumerate(futures):
                    labels, scores = future.result(timeout=30)
                    k = 1 + index % 3
                    assert labels.shape == (k,)
                    assert np.array_equal(labels, labels_k3[index, :k])


class _StallEngine:
    """An engine whose top_k blocks until released (to back the queue up)."""

    def __init__(self, engine):
        self._engine = engine
        self.release = threading.Event()

    def top_k(self, features, k):
        self.release.wait(timeout=30)
        return self._engine.top_k(features, k=k)


class TestOverloadAndDeadlines:
    def test_bounded_queue_sheds_when_full(self, engine, small_problem):
        from repro.serve.batching import SchedulerOverloadedError

        queries = small_problem["test_features"]
        stall = _StallEngine(engine)
        scheduler = BatchScheduler(
            stall, max_batch_size=4, max_wait_ms=1.0, max_queue_depth=3
        )
        try:
            futures = []
            # Fill the (stalled) queue past its bound; the excess must shed
            # synchronously instead of growing the backlog without limit.
            with pytest.raises(SchedulerOverloadedError):
                for index in range(32):
                    futures.append(scheduler.submit(queries[index % len(queries)]))
            assert len(futures) >= 3
        finally:
            stall.release.set()
            scheduler.stop()

    def test_rejects_negative_queue_depth(self, engine):
        with pytest.raises(ValueError, match="max_queue_depth"):
            BatchScheduler(engine, max_queue_depth=-1)

    def test_expired_deadline_sheds_in_queue(self, engine, small_problem):
        from repro.cluster.errors import DeadlineExceededError

        row = small_problem["test_features"][0]
        stall = _StallEngine(engine)
        scheduler = BatchScheduler(stall, max_batch_size=4, max_wait_ms=1.0)
        try:
            # The first submit occupies the batch loop; the second's deadline
            # expires while it waits behind the stalled batch.
            blocker = scheduler.submit(row)
            doomed = scheduler.submit(row, deadline=time.monotonic() + 0.05)
            time.sleep(0.2)
            stall.release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30)
            assert blocker.result(timeout=30)
        finally:
            stall.release.set()
            scheduler.stop()

    def test_live_deadline_scores_normally(self, engine, small_problem):
        row = small_problem["test_features"][0]
        with BatchScheduler(engine, max_batch_size=4, max_wait_ms=1.0) as scheduler:
            labels, _ = scheduler.top_k(row, k=1, deadline=time.monotonic() + 30.0)
        expected, _ = engine.top_k(row[None, :], k=1)
        np.testing.assert_array_equal(labels, expected[0])
