"""Unit tests for the request-level prediction cache and payload validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.hdc.encoders import RecordEncoder
from repro.serve import ModelRegistry, PackedInferenceEngine, ServeApp
from repro.serve.server import RequestError, _PredictionCache


class TestPredictionCache:
    def test_lru_eviction_order(self):
        cache = _PredictionCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refreshes 'a'
        cache.put(("c",), 3)  # evicts 'b', the least recently used
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3
        assert len(cache) == 2

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            _PredictionCache(0)


@pytest.fixture()
def app(small_problem):
    encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=2)
    pipeline = HDCPipeline(encoder, BaselineHDC(seed=2))
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    registry = ModelRegistry()
    registry.register("m", PackedInferenceEngine(pipeline, name="m"))
    app = ServeApp(registry, max_wait_ms=0.5, cache_size=8)
    yield app, pipeline, small_problem["test_features"]
    app.close()


class TestServeCache:
    def test_repeat_payload_hits_cache(self, app):
        serve_app, _, queries = app
        payload = {"features": queries[0].tolist()}
        first = serve_app.predict(payload)
        second = serve_app.predict(payload)
        assert "cached" not in first
        assert second["cached"] is True
        assert second["labels"] == first["labels"]
        assert second["scores"] == first["scores"]
        cache = serve_app.metrics_snapshot()["models"]["m"]["cache"]
        assert cache == {"hits": 1, "misses": 1, "hit_rate": 0.5}

    def test_top_k_is_part_of_the_key(self, app):
        serve_app, _, queries = app
        row = queries[0].tolist()
        serve_app.predict({"features": row, "top_k": 1})
        response = serve_app.predict({"features": row, "top_k": 2})
        assert "cached" not in response
        assert len(response["top_k_labels"][0]) == 2

    def test_batch_payloads_are_cached_too(self, app):
        serve_app, _, queries = app
        payload = {"features": queries[:4].tolist()}
        first = serve_app.predict(payload)
        second = serve_app.predict(payload)
        assert second["cached"] is True
        assert second["labels"] == first["labels"]

    def test_promote_invalidates_via_version_key(self, app, small_problem):
        serve_app, pipeline, queries = app
        payload = {"features": queries[0].tolist()}
        serve_app.predict(payload)
        assert serve_app.predict(payload)["cached"] is True
        # Register + promote a second version: same payload must re-run.
        serve_app.registry.register("m", PackedInferenceEngine(pipeline, name="m"))
        response = serve_app.predict(payload)
        assert "cached" not in response
        cache = serve_app.metrics_snapshot()["models"]["m"]["cache"]
        assert cache["misses"] == 2

    def test_metrics_snapshot_reports_cache_occupancy(self, app):
        serve_app, _, queries = app
        serve_app.predict({"features": queries[0].tolist()})
        snapshot = serve_app.metrics_snapshot()
        assert snapshot["prediction_cache"] == {"entries": 1, "max_entries": 8}

    def test_cache_disabled_records_no_counters(self, small_problem, app):
        _, pipeline, queries = app
        registry = ModelRegistry()
        registry.register("m", PackedInferenceEngine(pipeline, name="m"))
        uncached = ServeApp(registry, max_wait_ms=0.5, cache_size=0)
        try:
            payload = {"features": queries[0].tolist()}
            uncached.predict(payload)
            response = uncached.predict(payload)
            assert "cached" not in response
            cache = uncached.metrics_snapshot()["models"]["m"]["cache"]
            assert cache == {"hits": 0, "misses": 0, "hit_rate": 0.0}
            assert "prediction_cache" not in uncached.metrics_snapshot()
        finally:
            uncached.close()


class TestPayloadValidation:
    @pytest.mark.parametrize(
        "bad",
        [float("nan"), float("inf"), float("-inf")],
        ids=["nan", "inf", "-inf"],
    )
    def test_non_finite_features_are_a_clean_400(self, app, bad):
        serve_app, _, queries = app
        payload = {"features": [bad] + queries[0].tolist()[1:]}
        with pytest.raises(RequestError) as excinfo:
            serve_app.predict(payload)
        assert excinfo.value.status == 400
        assert "finite" in str(excinfo.value)

    def test_ragged_rows_are_a_clean_400(self, app):
        serve_app, _, _ = app
        with pytest.raises(RequestError) as excinfo:
            serve_app.predict({"features": [[1.0, 2.0], [3.0]]})
        assert excinfo.value.status == 400
        assert "rectangular" in str(excinfo.value)

    def test_non_numeric_features_are_a_clean_400(self, app):
        serve_app, _, _ = app
        with pytest.raises(RequestError) as excinfo:
            serve_app.predict({"features": ["a", "b"]})
        assert excinfo.value.status == 400

    def test_3d_features_rejected(self, app):
        serve_app, _, _ = app
        with pytest.raises(RequestError) as excinfo:
            serve_app.predict({"features": np.zeros((2, 2, 2)).tolist()})
        assert excinfo.value.status == 400
        assert "1-D or 2-D" in str(excinfo.value)
