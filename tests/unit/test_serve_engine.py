"""Unit tests for repro.serve.engine (the packed inference engine)."""

import numpy as np
import pytest

from repro.classifiers.adapthd import AdaptHDC
from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.enhanced import EnhancedRetrainingHDC
from repro.classifiers.multimodel import MultiModelHDC
from repro.classifiers.nonbinary import NonBinaryHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.classifiers.retraining import RetrainingHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.hdc.encoders import NGramEncoder, RecordEncoder
from repro.serve.engine import PackedInferenceEngine

BINARY_STRATEGIES = {
    "baseline": lambda: BaselineHDC(seed=0),
    "retraining": lambda: RetrainingHDC(iterations=3, seed=0),
    "adapthd": lambda: AdaptHDC(iterations=3, seed=0),
    "enhanced": lambda: EnhancedRetrainingHDC(iterations=3, seed=0),
    "lehdc": lambda: LeHDCClassifier(
        config=LeHDCConfig(epochs=3, batch_size=32), seed=0
    ),
}


def fit_pipeline(small_problem, classifier, encoder=None):
    encoder = encoder or RecordEncoder(
        dimension=512, num_levels=8, tie_break="positive", seed=0
    )
    pipeline = HDCPipeline(encoder, classifier)
    pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
    return pipeline


class TestPackedEqualsDense:
    @pytest.mark.parametrize("strategy", sorted(BINARY_STRATEGIES))
    def test_packed_predictions_match_pipeline(self, small_problem, strategy):
        pipeline = fit_pipeline(small_problem, BINARY_STRATEGIES[strategy]())
        engine = PackedInferenceEngine(pipeline, name=strategy)
        assert engine.mode == "packed"
        np.testing.assert_array_equal(
            engine.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_packed_scores_match_dense_dot(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        features = small_problem["test_features"]
        encoded = pipeline.encoder.encode(features)
        np.testing.assert_array_equal(
            engine.decision_scores(features),
            pipeline.classifier.decision_scores(encoded),
        )

    def test_ngram_encoder_engine(self, small_problem):
        encoder = NGramEncoder(
            dimension=512, num_levels=8, ngram=3, tie_break="positive", seed=0
        )
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0), encoder=encoder)
        engine = PackedInferenceEngine(pipeline)
        np.testing.assert_array_equal(
            engine.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_encode_matches_encoder(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        features = small_problem["test_features"]
        np.testing.assert_array_equal(
            engine.encode(features), pipeline.encoder.encode(features)
        )

    def test_factored_fallback_when_lut_over_budget(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        fused = PackedInferenceEngine(pipeline)
        factored = PackedInferenceEngine(pipeline, lut_budget_bytes=1)
        features = small_problem["test_features"]
        np.testing.assert_array_equal(
            fused.predict(features), factored.predict(features)
        )
        assert factored.info()["table_bytes"] < fused.info()["table_bytes"]


class TestDenseFallback:
    def test_nonbinary_uses_dense_mode(self, small_problem):
        pipeline = fit_pipeline(small_problem, NonBinaryHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        assert engine.mode == "dense"
        np.testing.assert_array_equal(
            engine.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_forcing_packed_on_nonbinary_rejected(self, small_problem):
        pipeline = fit_pipeline(small_problem, NonBinaryHDC(seed=0))
        with pytest.raises(ValueError):
            PackedInferenceEngine(pipeline, mode="packed")


class TestEnsemblePackedServing:
    """The SearcHD-style ensemble serves on the packed path, not dense."""

    def test_multimodel_takes_packed_path(self, small_problem):
        pipeline = fit_pipeline(
            small_problem, MultiModelHDC(models_per_class=4, iterations=1, seed=0)
        )
        engine = PackedInferenceEngine(pipeline)
        assert engine.mode == "packed"
        features = small_problem["test_features"]
        np.testing.assert_array_equal(
            engine.predict(features), pipeline.predict(features)
        )
        # Dense-path scores match exactly too (max over sub-models both ways).
        encoded = pipeline.encoder.encode(features)
        np.testing.assert_array_equal(
            engine.decision_scores(features),
            pipeline.classifier.decision_scores(encoded),
        )

    def test_resident_bank_is_the_full_ensemble(self, small_problem):
        models_per_class = 4
        pipeline = fit_pipeline(
            small_problem,
            MultiModelHDC(models_per_class=models_per_class, iterations=1, seed=0),
        )
        engine = PackedInferenceEngine(pipeline)
        num_rows = small_problem["num_classes"] * models_per_class
        assert engine.info()["packed_rows"] == num_rows
        assert engine.packed_storage_bytes == num_rows * (512 // 64) * 8

    def test_forcing_dense_still_allowed(self, small_problem):
        pipeline = fit_pipeline(
            small_problem, MultiModelHDC(models_per_class=3, iterations=1, seed=0)
        )
        dense = PackedInferenceEngine(pipeline, mode="dense")
        packed = PackedInferenceEngine(pipeline, mode="packed")
        np.testing.assert_array_equal(
            dense.predict(small_problem["test_features"]),
            packed.predict(small_problem["test_features"]),
        )


class TestEngineOutputs:
    def test_predict_proba_rows_sum_to_one(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        proba = engine.predict_proba(small_problem["test_features"])
        assert proba.shape == (
            small_problem["test_features"].shape[0],
            small_problem["num_classes"],
        )
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        np.testing.assert_array_equal(
            np.argmax(proba, axis=1), engine.predict(small_problem["test_features"])
        )

    def test_top_k_is_sorted_and_clipped(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        labels, scores = engine.top_k(small_problem["test_features"], k=100)
        assert labels.shape[1] == small_problem["num_classes"]
        assert np.all(np.diff(scores, axis=1) <= 0)
        np.testing.assert_array_equal(
            labels[:, 0], engine.predict(small_problem["test_features"])
        )

    def test_top_k_rejects_bad_k(self, small_problem):
        engine = PackedInferenceEngine(fit_pipeline(small_problem, BaselineHDC(seed=0)))
        with pytest.raises(ValueError):
            engine.top_k(small_problem["test_features"], k=0)

    def test_info_and_warmup(self, small_problem):
        engine = PackedInferenceEngine(
            fit_pipeline(small_problem, BaselineHDC(seed=0)), name="m"
        )
        engine.warmup()
        info = engine.info()
        assert info["name"] == "m"
        assert info["mode"] == "packed"
        assert info["dimension"] == 512
        assert info["packed_storage_bytes"] == 4 * (512 // 64) * 8

    def test_unfitted_pipeline_rejected(self):
        pipeline = HDCPipeline(RecordEncoder(dimension=128, seed=0), BaselineHDC(seed=0))
        with pytest.raises(ValueError):
            PackedInferenceEngine(pipeline)

    def test_bad_mode_rejected(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        with pytest.raises(ValueError):
            PackedInferenceEngine(pipeline, mode="quantum")


class TestFromFile:
    def test_roundtrip_through_saved_model(self, small_problem, tmp_path):
        from repro.io import save_model

        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        path = save_model(tmp_path / "m.npz", pipeline, strategy_name="baseline")
        engine = PackedInferenceEngine.from_file(path)
        assert engine.name == "m"
        assert engine.metadata["strategy"] == "baseline"
        np.testing.assert_array_equal(
            engine.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )


class TestPackedExportOnClassifiers:
    def test_packed_class_hypervectors_roundtrip(self, encoded_problem):
        from repro.kernels import unpack_bipolar

        classifier = BaselineHDC(seed=0).fit(
            encoded_problem["train_hypervectors"], encoded_problem["train_labels"]
        )
        packed = classifier.packed_class_hypervectors()
        assert len(packed) == encoded_problem["num_classes"]
        np.testing.assert_array_equal(
            unpack_bipolar(packed), classifier.class_hypervectors_
        )

    def test_packed_export_requires_fit(self):
        with pytest.raises(RuntimeError):
            BaselineHDC(seed=0).packed_class_hypervectors()


class TestEngineDoesNotMutateSharedEncoder:
    def test_custom_lut_budget_is_engine_local(self, small_problem):
        """A non-default engine budget must not change the shared encoder's
        own budget or recompile its fused tables (the training-side owner of
        the pipeline keeps its fast path)."""
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        encoder = pipeline.encoder
        original_budget = encoder.lut_budget_bytes
        encoder_accumulator = encoder._get_accumulator()

        engine = PackedInferenceEngine(pipeline, lut_budget_bytes=1)
        assert encoder.lut_budget_bytes == original_budget
        assert encoder._get_accumulator() is encoder_accumulator
        # The engine itself runs the factored form and still predicts the same.
        assert engine._accumulator is not encoder_accumulator
        np.testing.assert_array_equal(
            engine.predict(small_problem["test_features"]),
            pipeline.predict(small_problem["test_features"]),
        )

    def test_default_budget_shares_the_encoder_accumulator(self, small_problem):
        pipeline = fit_pipeline(small_problem, BaselineHDC(seed=0))
        engine = PackedInferenceEngine(pipeline)
        assert engine._accumulator is pipeline.encoder._get_accumulator()
