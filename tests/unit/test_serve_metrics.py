"""Unit tests for repro.serve.metrics."""

import threading

import pytest

from repro.serve.metrics import LatencyHistogram, MetricsRegistry, ModelMetrics


class TestLatencyHistogram:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0

    def test_percentiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)  # 1 ms
        histogram.record(1.0)  # one outlier
        assert histogram.count == 100
        # p50 lands in the bucket containing 1 ms; p99+ sees the outlier's bucket.
        assert histogram.percentile(50) <= 0.002
        assert histogram.percentile(99.5) >= 0.5
        assert histogram.snapshot()["max_ms"] == pytest.approx(1000.0)

    def test_mean_is_exact(self):
        histogram = LatencyHistogram()
        histogram.record(0.010)
        histogram.record(0.030)
        assert histogram.mean == pytest.approx(0.020)

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram(bounds=[0.001])
        histogram.record(5.0)
        assert histogram.percentile(99) == pytest.approx(5.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[])
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(123)

    def test_concurrent_recording(self):
        histogram = LatencyHistogram()

        def record_many():
            for _ in range(500):
                histogram.record(0.001)

        threads = [threading.Thread(target=record_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 2000


class TestModelMetrics:
    def test_request_accounting(self):
        metrics = ModelMetrics()
        metrics.record_request(4, 0.002)
        metrics.record_request(1, 0.001)
        metrics.record_error()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["samples"] == 5
        assert snapshot["errors"] == 1
        assert snapshot["latency"]["count"] == 2

    def test_batch_size_distribution(self):
        metrics = ModelMetrics()
        for size in (1, 8, 8, 16):
            metrics.record_batch(size)
        snapshot = metrics.snapshot()
        assert snapshot["batches"] == 4
        assert snapshot["batch_size_distribution"] == {"1": 1, "8": 2, "16": 1}
        assert snapshot["mean_batch_size"] == pytest.approx((1 + 8 + 8 + 16) / 4)


class TestMetricsRegistry:
    def test_for_model_is_stable(self):
        registry = MetricsRegistry()
        assert registry.for_model("a") is registry.for_model("a")
        assert registry.for_model("a") is not registry.for_model("b")

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.for_model("m").record_request(1, 0.001)
        registry.for_model("m").record_batch(1)
        payload = json.dumps(registry.snapshot())
        assert '"m"' in payload
        assert registry.model_names() == ["m"]


class TestSnapshotConsistency:
    """Snapshots taken during concurrent recording must never be torn."""

    def test_histogram_snapshot_is_internally_consistent_under_writes(self):
        histogram = LatencyHistogram()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                histogram.record(0.001)
                histogram.record(5.0)  # lands in a different bucket

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snapshot = histogram.snapshot()
                # Cumulative buckets must be monotone and the +Inf bucket
                # must equal the count taken in the same critical section.
                counts = [bucket["count"] for bucket in snapshot["buckets"]]
                assert counts == sorted(counts)
                assert counts[-1] == snapshot["count"]
                if snapshot["count"]:
                    assert snapshot["mean_ms"] == pytest.approx(
                        snapshot["sum_seconds"] / snapshot["count"] * 1e3
                    )
                    assert snapshot["max_ms"] >= snapshot["p50_ms"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_model_snapshot_counters_move_together(self):
        metrics = ModelMetrics()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                # Every request carries exactly 3 samples, so any snapshot
                # must observe samples == 3 * requests — a torn read (one
                # counter updated, the other not yet) breaks the invariant.
                metrics.record_request(3, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snapshot = metrics.snapshot()
                assert snapshot["samples"] == 3 * snapshot["requests"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_concurrent_stage_recording(self):
        metrics = ModelMetrics()

        def record_stages():
            for _ in range(200):
                metrics.record_stage("validate", 0.0001)
                metrics.record_stage("dispatch", 0.001)

        threads = [threading.Thread(target=record_stages) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["stages"]["validate"]["count"] == 800
        assert snapshot["stages"]["dispatch"]["count"] == 800
        # Stage histograms are stable objects, created exactly once.
        assert metrics.stage("validate") is metrics.stage("validate")
