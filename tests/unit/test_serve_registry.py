"""Unit tests for repro.serve.registry (versioning, hot-swap, LRU residency)."""

import numpy as np
import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.classifiers.pipeline import HDCPipeline
from repro.classifiers.retraining import RetrainingHDC
from repro.hdc.encoders import RecordEncoder
from repro.io import save_model
from repro.serve.engine import PackedInferenceEngine
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def saved_models(small_problem, tmp_path_factory):
    """Two trained variants of the same problem saved to disk."""
    directory = tmp_path_factory.mktemp("models")
    paths = {}
    for name, classifier in (
        ("baseline", BaselineHDC(seed=0)),
        ("retraining", RetrainingHDC(iterations=3, seed=0)),
    ):
        encoder = RecordEncoder(dimension=512, num_levels=8, tie_break="positive", seed=0)
        pipeline = HDCPipeline(encoder, classifier)
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        paths[name] = save_model(
            directory / f"{name}.npz", pipeline, strategy_name=name
        )
    return paths


class TestRegisterAndResolve:
    def test_register_path_and_get(self, saved_models, small_problem):
        registry = ModelRegistry()
        version = registry.register("har", saved_models["baseline"])
        assert version == 1
        engine = registry.get("har")
        assert isinstance(engine, PackedInferenceEngine)
        predictions = engine.predict(small_problem["test_features"])
        assert predictions.shape == (small_problem["test_features"].shape[0],)

    def test_register_pipeline_directly(self, small_problem):
        encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=0)
        pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        registry = ModelRegistry()
        registry.register("inmem", pipeline)
        assert registry.get("inmem").predict(small_problem["test_features"]) is not None

    def test_versions_auto_increment(self, saved_models):
        registry = ModelRegistry()
        assert registry.register("m", saved_models["baseline"]) == 1
        assert registry.register("m", saved_models["retraining"]) == 2
        assert registry.register("m", saved_models["baseline"], version=7) == 7
        assert registry.register("m", saved_models["baseline"]) == 8

    def test_duplicate_version_rejected(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"], version=1)
        with pytest.raises(ValueError):
            registry.register("m", saved_models["baseline"], version=1)

    def test_unknown_lookups_raise(self, saved_models):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.get("missing")
        registry.register("m", saved_models["baseline"])
        with pytest.raises(KeyError):
            registry.get("m", version=9)

    def test_bad_source_type_rejected(self):
        with pytest.raises(TypeError):
            ModelRegistry().register("m", 42)


class TestHotSwap:
    def test_register_promotes_latest_by_default(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        registry.register("m", saved_models["retraining"])
        assert registry.get("m").metadata["strategy"] == "retraining"

    def test_register_without_promote_keeps_default(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        registry.register("m", saved_models["retraining"], promote=False)
        assert registry.get("m").metadata["strategy"] == "baseline"

    def test_promote_flips_resolution(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        registry.register("m", saved_models["retraining"], promote=False)
        registry.promote("m", 2)
        assert registry.get("m").metadata["strategy"] == "retraining"

    def test_resolver_tracks_promotion(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        resolve = registry.resolver("m")
        assert resolve().metadata["strategy"] == "baseline"
        registry.register("m", saved_models["retraining"])  # auto-promotes v2
        assert resolve().metadata["strategy"] == "retraining"

    def test_evict_version_and_model(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        registry.register("m", saved_models["retraining"])
        registry.evict("m", version=2)
        # The default falls back to the highest remaining version.
        assert registry.get("m").metadata["strategy"] == "baseline"
        registry.evict("m")
        assert "m" not in registry
        with pytest.raises(KeyError):
            registry.evict("m")


class TestResidency:
    def test_lru_cap_evicts_and_reloads(self, saved_models, small_problem):
        registry = ModelRegistry(max_resident=1)
        registry.register("a", saved_models["baseline"])
        registry.register("b", saved_models["retraining"])
        engine_a = registry.get("a")
        registry.get("b")  # loading b pushes a (least recently used) out
        listing = {row["name"]: row["resident"] for row in registry.list_models()}
        assert listing == {"a": False, "b": True}
        # Access transparently reloads a from its path.
        reloaded = registry.get("a")
        assert reloaded is not engine_a
        np.testing.assert_array_equal(
            reloaded.predict(small_problem["test_features"]),
            engine_a.predict(small_problem["test_features"]),
        )

    def test_pinned_engines_never_evicted(self, saved_models, small_problem):
        encoder = RecordEncoder(dimension=256, num_levels=8, tie_break="positive", seed=0)
        pipeline = HDCPipeline(encoder, BaselineHDC(seed=0))
        pipeline.fit(small_problem["train_features"], small_problem["train_labels"])
        registry = ModelRegistry(max_resident=1)
        registry.register("pinned", pipeline)
        registry.register("a", saved_models["baseline"])
        registry.register("b", saved_models["retraining"])
        registry.get("a")
        registry.get("b")
        resident = {row["name"]: row["resident"] for row in registry.list_models()}
        assert resident["pinned"] is True

    def test_list_models_shape(self, saved_models):
        registry = ModelRegistry()
        registry.register("m", saved_models["baseline"])
        (row,) = registry.list_models()
        assert row["name"] == "m"
        assert row["version"] == 1
        assert row["default"] is True
        assert row["strategy"] == "baseline"
        assert row["dimension"] == 512
