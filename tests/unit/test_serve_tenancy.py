"""Unit tests for repro.serve.tenancy: buckets, quotas, circuit breaker."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serve.tenancy import (
    CircuitBreaker,
    TenantQuotaExceededError,
    TenantQuotas,
    TenantRateLimitedError,
    TokenBucket,
    retry_after_header,
)


class FakeClock:
    """An explicit monotonic clock so admission tests never sleep."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)

    def test_refills_at_rate_and_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert bucket.available == 0.0
        clock.advance(0.25)
        assert bucket.available == pytest.approx(1.0)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)  # never exceeds burst

    def test_wait_hint_is_time_to_accrue_shortfall(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() == pytest.approx(0.1)
        clock.advance(0.05)
        assert bucket.try_acquire() == pytest.approx(0.05)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0), (1, -2)])
    def test_rejects_nonpositive_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestTenantQuotas:
    def test_rate_limit_is_per_tenant_and_typed(self):
        clock = FakeClock()
        quotas = TenantQuotas(rps=1.0, burst=1.0, clock=clock)
        quotas.admit("a").release()
        with pytest.raises(TenantRateLimitedError) as info:
            quotas.admit("a")
        assert info.value.code == "tenant_rate_limited"
        assert info.value.retry_after > 0
        # Tenant "b" has its own bucket and is unaffected by "a"'s burst.
        quotas.admit("b").release()

    def test_concurrency_quota_and_lease_release(self):
        quotas = TenantQuotas(max_concurrent=2)
        first = quotas.admit("a")
        second = quotas.admit("a")
        with pytest.raises(TenantQuotaExceededError) as info:
            quotas.admit("a")
        assert info.value.code == "tenant_quota_exceeded"
        first.release()
        first.release()  # idempotent: must not free a second slot
        third = quotas.admit("a")
        with pytest.raises(TenantQuotaExceededError):
            quotas.admit("a")
        second.release()
        third.release()

    def test_lease_is_a_context_manager(self):
        quotas = TenantQuotas(max_concurrent=1)
        with quotas.admit("a"):
            with pytest.raises(TenantQuotaExceededError):
                quotas.admit("a")
        quotas.admit("a").release()

    def test_rate_tokens_refill_admits_again(self):
        clock = FakeClock()
        quotas = TenantQuotas(rps=2.0, burst=1.0, clock=clock)
        quotas.admit("a").release()
        with pytest.raises(TenantRateLimitedError):
            quotas.admit("a")
        clock.advance(0.5)
        quotas.admit("a").release()

    def test_overrides_beat_defaults_and_none_disables(self):
        clock = FakeClock()
        quotas = TenantQuotas(
            rps=1.0,
            burst=1.0,
            max_concurrent=1,
            tenants={
                "premium": {"rps": None, "max_concurrent": 3},
                "batch": {"max_concurrent": None},
            },
            clock=clock,
        )
        # premium: no rate limit, 3 concurrent.
        leases = [quotas.admit("premium") for _ in range(3)]
        with pytest.raises(TenantQuotaExceededError):
            quotas.admit("premium")
        for lease in leases:
            lease.release()
        # batch: inherits the 1 rps default but has no concurrency cap.
        held = quotas.admit("batch")
        with pytest.raises(TenantRateLimitedError):
            quotas.admit("batch")
        held.release()

    def test_snapshot_counts_admissions_and_sheds(self):
        clock = FakeClock()
        quotas = TenantQuotas(rps=1.0, burst=1.0, max_concurrent=1, clock=clock)
        lease = quotas.admit("a")
        with pytest.raises(TenantQuotaExceededError):
            quotas.admit("a")
        lease.release()
        with pytest.raises(TenantRateLimitedError):
            quotas.admit("a")
        snap = quotas.snapshot()
        assert snap["defaults"]["rps"] == 1.0
        assert snap["tenants"]["a"] == {
            "in_flight": 0,
            "admitted": 1,
            "rate_limited": 1,
            "quota_exceeded": 1,
        }

    def test_from_file_defaults_and_overrides(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(
            json.dumps(
                {
                    "defaults": {"rps": 50, "burst": 100, "max_concurrent": 8},
                    "tenants": {"batch": {"rps": 5, "max_concurrent": 2}},
                }
            )
        )
        quotas = TenantQuotas.from_file(path)
        assert quotas.default_rps == 50
        assert quotas.default_burst == 100
        assert quotas.default_max_concurrent == 8
        leases = [quotas.admit("batch"), quotas.admit("batch")]
        with pytest.raises(TenantQuotaExceededError):
            quotas.admit("batch")
        for lease in leases:
            lease.release()

    def test_from_file_kwargs_override_file_defaults(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({"defaults": {"rps": 50}}))
        quotas = TenantQuotas.from_file(path, rps=2.0, max_concurrent=4)
        assert quotas.default_rps == 2.0
        assert quotas.default_max_concurrent == 4

    @pytest.mark.parametrize(
        "payload",
        [
            "[]",
            '{"defaults": 3}',
            '{"tenants": []}',
            '{"tenants": {"a": 5}}',
            '{"tenants": {"a": {"rsp": 1}}}',
        ],
    )
    def test_from_file_rejects_malformed_configs(self, tmp_path, payload):
        path = tmp_path / "quotas.json"
        path.write_text(payload)
        with pytest.raises(ValueError):
            TenantQuotas.from_file(path)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TenantQuotas(rps=0)
        with pytest.raises(ValueError):
            TenantQuotas(burst=-1)
        with pytest.raises(ValueError):
            TenantQuotas(max_concurrent=0)

    def test_admission_is_thread_safe(self):
        quotas = TenantQuotas(max_concurrent=4)
        admitted, shed = [], []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            try:
                lease = quotas.admit("a")
            except TenantQuotaExceededError:
                shed.append(1)
            else:
                admitted.append(lease)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 4 and len(shed) == 4
        for lease in admitted:
            lease.release()
        assert quotas.snapshot()["tenants"]["a"]["in_flight"] == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_seconds=30.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.check() is None
        breaker.record_failure()
        assert breaker.state == "open"
        wait = breaker.check()
        assert wait == pytest.approx(30.0)

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_is_exclusive_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.check() is not None
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.check() is None  # the single probe is admitted
        assert breaker.check() is not None  # concurrent callers fail fast
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.check() is None

    def test_failed_probe_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.check() is None
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.check() == pytest.approx(10.0)

    def test_snapshot_reports_state(self):
        breaker = CircuitBreaker(threshold=2, reset_seconds=5.0)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap == {
            "state": "closed",
            "consecutive_failures": 1,
            "threshold": 2,
            "reset_seconds": 5.0,
        }

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=0)


def test_retry_after_header_rounds_up_to_at_least_one():
    assert retry_after_header(0.0) == 1
    assert retry_after_header(0.2) == 1
    assert retry_after_header(1.0) == 1
    assert retry_after_header(1.2) == 2
    assert retry_after_header(30.0) == 30
