"""Unit tests for repro.eval.significance."""

import numpy as np
import pytest

from repro.eval.significance import (
    mcnemar_test,
    paired_accuracy_ttest,
    wilson_interval,
)


class TestMcNemar:
    def test_identical_classifiers_not_significant(self):
        labels = np.array([0, 1, 1, 0, 1, 0])
        predictions = np.array([0, 1, 0, 0, 1, 1])
        result = mcnemar_test(predictions, predictions, labels)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_clearly_better_classifier_is_significant(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=300)
        good = labels.copy()  # always right
        bad = labels.copy()
        flip = rng.random(300) < 0.3  # wrong on 30% of samples
        bad[flip] = 1 - bad[flip]
        result = mcnemar_test(good, bad, labels)
        assert result.significant(alpha=0.01)

    def test_symmetric_disagreement_not_significant(self):
        labels = np.zeros(40, dtype=int)
        a = labels.copy()
        b = labels.copy()
        a[:10] = 1  # a wrong on the first 10
        b[10:20] = 1  # b wrong on the next 10
        result = mcnemar_test(a, b, labels)
        assert result.p_value > 0.5

    def test_detail_counts(self):
        labels = np.array([0, 0, 0, 0])
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 0, 0, 1])
        result = mcnemar_test(a, b, labels)
        assert "discordant pairs: 2" in result.detail


class TestPairedTTest:
    def test_consistent_advantage_is_significant(self):
        a = [0.92, 0.93, 0.91, 0.94, 0.92]
        b = [0.85, 0.86, 0.84, 0.88, 0.85]
        result = paired_accuracy_ttest(a, b)
        assert result.significant(alpha=0.01)
        assert result.statistic > 0

    def test_identical_sequences(self):
        result = paired_accuracy_ttest([0.9, 0.91], [0.9, 0.91])
        assert result.p_value == 1.0

    def test_constant_nonzero_difference(self):
        result = paired_accuracy_ttest([0.9, 0.8], [0.85, 0.75])
        assert result.p_value == 0.0
        assert result.significant()

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_accuracy_ttest([0.9], [0.8, 0.7])
        with pytest.raises(ValueError):
            paired_accuracy_ttest([], [])
        with pytest.raises(ValueError):
            paired_accuracy_ttest([0.9], [0.8])


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_narrows_with_more_samples(self):
        low_small, high_small = wilson_interval(8, 10)
        low_large, high_large = wilson_interval(800, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_bounds_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == pytest.approx(0.0, abs=1e-9)
        low, high = wilson_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=1.0)
