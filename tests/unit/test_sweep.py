"""Unit tests for repro.eval.sweep."""

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_gaussian_classes
from repro.eval.sweep import DimensionSweepResult, run_dimension_sweep


@pytest.fixture(scope="module")
def tiny_dataset():
    train_x, train_y, test_x, test_y = make_gaussian_classes(
        num_classes=3,
        num_features=16,
        train_size=120,
        test_size=60,
        class_sep=2.5,
        clusters_per_class=2,
        seed=0,
    )
    return Dataset(
        name="tiny",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
    )


STRATEGIES = {
    "baseline": lambda rng: BaselineHDC(seed=rng),
    "lehdc": lambda rng: LeHDCClassifier(
        config=LeHDCConfig(epochs=6, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
        seed=rng,
    ),
}


class TestRunDimensionSweep:
    def test_sweep_structure(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[128, 512],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=1,
            seed=0,
        )
        assert isinstance(result, DimensionSweepResult)
        assert result.dimensions == [128, 512]
        assert set(result.accuracies) == {"baseline", "lehdc"}
        series = result.series("baseline")
        assert len(series) == 2

    def test_summary_contains_mean_std(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[256],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=2,
            seed=1,
        )
        summary = result.summary("lehdc")[256]
        assert summary.count == 2

    def test_crossover_dimension(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[128, 1024],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=1,
            seed=2,
        )
        crossover = result.crossover_dimension("lehdc", "baseline", 1024)
        assert crossover in (128, 1024, None)

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_dimension_sweep(dimensions=[128])
        with pytest.raises(ValueError):
            run_dimension_sweep(dataset=tiny_dataset, dimensions=[])
        with pytest.raises(ValueError):
            run_dimension_sweep(
                dataset=tiny_dataset, dataset_name="mnist", dimensions=[128]
            )

    def test_dimensions_sorted(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[512, 128],
            strategies={"baseline": STRATEGIES["baseline"]},
            num_levels=8,
            repetitions=1,
            seed=3,
        )
        assert result.dimensions == [128, 512]
