"""Unit tests for repro.eval.sweep."""

import pytest

from repro.classifiers.baseline import BaselineHDC
from repro.core.configs import LeHDCConfig
from repro.core.lehdc import LeHDCClassifier
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_gaussian_classes
from repro.eval.sweep import DimensionSweepResult, run_dimension_sweep


@pytest.fixture(scope="module")
def tiny_dataset():
    train_x, train_y, test_x, test_y = make_gaussian_classes(
        num_classes=3,
        num_features=16,
        train_size=120,
        test_size=60,
        class_sep=2.5,
        clusters_per_class=2,
        seed=0,
    )
    return Dataset(
        name="tiny",
        train_features=train_x,
        train_labels=train_y,
        test_features=test_x,
        test_labels=test_y,
    )


STRATEGIES = {
    "baseline": lambda rng: BaselineHDC(seed=rng),
    "lehdc": lambda rng: LeHDCClassifier(
        config=LeHDCConfig(epochs=6, batch_size=32, dropout_rate=0.1, weight_decay=0.01),
        seed=rng,
    ),
}


class TestRunDimensionSweep:
    def test_sweep_structure(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[128, 512],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=1,
            seed=0,
        )
        assert isinstance(result, DimensionSweepResult)
        assert result.dimensions == [128, 512]
        assert set(result.accuracies) == {"baseline", "lehdc"}
        series = result.series("baseline")
        assert len(series) == 2

    def test_summary_contains_mean_std(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[256],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=2,
            seed=1,
        )
        summary = result.summary("lehdc")[256]
        assert summary.count == 2

    def test_crossover_dimension(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[128, 1024],
            strategies=STRATEGIES,
            num_levels=8,
            repetitions=1,
            seed=2,
        )
        crossover = result.crossover_dimension("lehdc", "baseline", 1024)
        assert crossover in (128, 1024, None)

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_dimension_sweep(dimensions=[128])
        with pytest.raises(ValueError):
            run_dimension_sweep(dataset=tiny_dataset, dimensions=[])
        with pytest.raises(ValueError):
            run_dimension_sweep(
                dataset=tiny_dataset, dataset_name="mnist", dimensions=[128]
            )

    def test_dimensions_sorted(self, tiny_dataset):
        result = run_dimension_sweep(
            dataset=tiny_dataset,
            dimensions=[512, 128],
            strategies={"baseline": STRATEGIES["baseline"]},
            num_levels=8,
            repetitions=1,
            seed=3,
        )
        assert result.dimensions == [128, 512]


class TestPackedSplitsAndFitGrid:
    @pytest.fixture(scope="class")
    def splits(self, tiny_dataset):
        from repro.eval.sweep import PackedSplits
        from repro.hdc.encoders import RecordEncoder

        encoder = RecordEncoder(dimension=256, num_levels=8, seed=3)
        return PackedSplits.from_dataset(tiny_dataset, encoder)

    def test_from_dataset_packs_both_splits(self, tiny_dataset, splits):
        import numpy as np

        from repro.kernels.packed import pack_bipolar

        assert splits.train_set.num_samples == tiny_dataset.train_features.shape[0]
        assert len(splits.test_packed) == tiny_dataset.test_features.shape[0]
        np.testing.assert_array_equal(
            splits.test_packed.words, pack_bipolar(splits.test_encoded).words
        )

    def test_run_fit_grid_shares_one_packed_training_set(self, splits, monkeypatch):
        """Every grid cell must ride the splits' PackedTrainingSet, not build one."""
        from repro.eval.sweep import run_fit_grid
        from repro.kernels.train import PackedTrainingSet

        def fail_from_dense(*args, **kwargs):
            raise AssertionError("grid cell built its own PackedTrainingSet")

        monkeypatch.setattr(PackedTrainingSet, "try_from_dense", fail_from_dense)
        results = run_fit_grid(
            splits,
            {"a": lambda: BaselineHDC(seed=0), "b": lambda: BaselineHDC(seed=1)},
        )
        assert set(results) == {"a", "b"}
        for cell in results.values():
            assert 0.0 <= cell.test_accuracy <= 1.0
            assert cell.fit_seconds >= 0.0
            assert cell.classifier.class_hypervectors_ is not None

    def test_run_fit_grid_matches_standalone_fit(self, splits):
        import numpy as np

        from repro.eval.sweep import run_fit_grid

        grid = run_fit_grid(splits, {"cell": lambda: BaselineHDC(seed=4)})
        standalone = BaselineHDC(seed=4).fit(splits.train_encoded, splits.train_labels)
        np.testing.assert_array_equal(
            grid["cell"].classifier.class_hypervectors_,
            standalone.class_hypervectors_,
        )

    def test_empty_grid_rejected(self, splits):
        from repro.eval.sweep import run_fit_grid

        with pytest.raises(ValueError, match="non-empty"):
            run_fit_grid(splits, {})

    def test_grid_accepts_packed_training_ensemble(self, splits):
        """The ensemble trains on the shared packed set through the grid too."""
        from repro.classifiers.multimodel import MultiModelHDC
        from repro.eval.sweep import run_fit_grid

        results = run_fit_grid(
            splits,
            {"ens": lambda: MultiModelHDC(models_per_class=2, iterations=1, seed=0)},
        )
        assert results["ens"].classifier.model_hypervectors_ is not None
