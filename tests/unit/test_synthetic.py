"""Unit tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.classifiers.nearest_centroid import NearestCentroidClassifier
from repro.datasets.synthetic import (
    make_gaussian_classes,
    make_image_like_classes,
)


class TestMakeGaussianClasses:
    def test_shapes_and_range(self):
        train_x, train_y, test_x, test_y = make_gaussian_classes(
            num_classes=3, num_features=10, train_size=90, test_size=30, seed=0
        )
        assert train_x.shape == (90, 10)
        assert test_x.shape == (30, 10)
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0
        assert test_x.min() >= 0.0 and test_x.max() <= 1.0
        assert set(np.unique(train_y)) == {0, 1, 2}

    def test_balanced_classes(self):
        _, train_y, _, _ = make_gaussian_classes(
            num_classes=4, num_features=8, train_size=100, test_size=20, seed=1
        )
        counts = np.bincount(train_y)
        assert counts.max() - counts.min() <= 1

    def test_reproducible(self):
        a = make_gaussian_classes(3, 8, 60, 20, seed=5)
        b = make_gaussian_classes(3, 8, 60, 20, seed=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_higher_separation_is_easier(self):
        def accuracy(class_sep):
            train_x, train_y, test_x, test_y = make_gaussian_classes(
                num_classes=4,
                num_features=16,
                train_size=400,
                test_size=200,
                class_sep=class_sep,
                noise_std=1.0,
                seed=7,
            )
            model = NearestCentroidClassifier().fit(train_x, train_y)
            return model.score(test_x, test_y)

        assert accuracy(4.0) > accuracy(0.3)

    def test_noise_features_carry_no_information(self):
        train_x, train_y, _, _ = make_gaussian_classes(
            num_classes=2,
            num_features=20,
            train_size=400,
            test_size=50,
            noise_feature_fraction=0.5,
            class_sep=3.0,
            seed=8,
        )
        # The last half of the features are pure noise: class-conditional means
        # should be nearly identical there.
        noise_block = train_x[:, 10:]
        mean_difference = np.abs(
            noise_block[train_y == 0].mean(axis=0) - noise_block[train_y == 1].mean(axis=0)
        ).max()
        informative_block = train_x[:, :10]
        informative_difference = np.abs(
            informative_block[train_y == 0].mean(axis=0)
            - informative_block[train_y == 1].mean(axis=0)
        ).max()
        assert mean_difference < informative_difference

    def test_validation(self):
        with pytest.raises(ValueError):
            make_gaussian_classes(1, 10, 50, 20)
        with pytest.raises(ValueError):
            make_gaussian_classes(3, 10, 50, 20, class_sep=0.0)
        with pytest.raises(ValueError):
            make_gaussian_classes(3, 10, 50, 20, noise_feature_fraction=1.0)


class TestMakeImageLikeClasses:
    def test_shapes(self):
        train_x, train_y, test_x, test_y = make_image_like_classes(
            num_classes=4, image_size=8, train_size=80, test_size=40, seed=0
        )
        assert train_x.shape == (80, 64)
        assert test_x.shape == (40, 64)
        assert set(np.unique(train_y)) == {0, 1, 2, 3}

    def test_channels_multiply_features(self):
        train_x, _, _, _ = make_image_like_classes(
            num_classes=2, image_size=6, channels=3, train_size=20, test_size=10, seed=1
        )
        assert train_x.shape[1] == 3 * 36

    def test_range_01(self):
        train_x, _, test_x, _ = make_image_like_classes(
            num_classes=3, image_size=8, train_size=60, test_size=30, seed=2
        )
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0
        assert test_x.min() >= 0.0 and test_x.max() <= 1.0

    def test_learnable(self):
        train_x, train_y, test_x, test_y = make_image_like_classes(
            num_classes=3,
            image_size=10,
            train_size=300,
            test_size=150,
            class_sep=3.0,
            clusters_per_class=1,
            noise_std=0.8,
            seed=3,
        )
        model = NearestCentroidClassifier().fit(train_x, train_y)
        assert model.score(test_x, test_y) > 0.7

    def test_reproducible(self):
        a = make_image_like_classes(2, 6, 20, 10, seed=4)
        b = make_image_like_classes(2, 6, 20, 10, seed=4)
        np.testing.assert_array_equal(a[0], b[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            make_image_like_classes(2, 1, 20, 10)
        with pytest.raises(ValueError):
            make_image_like_classes(2, 8, 20, 10, noise_std=0.0)
