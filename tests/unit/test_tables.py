"""Unit tests for repro.eval.tables."""

import pytest

from repro.eval.tables import format_table


class TestFormatTable:
    def test_alignment_and_contents(self):
        text = format_table(
            headers=["Dataset", "Accuracy"],
            rows=[["mnist", "94.74"], ["cifar10", "46.10"]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Dataset" in lines[1]
        assert "mnist" in text
        assert "46.10" in text
        # Header separator present
        assert set(lines[2]) <= {"-", "+"}

    def test_no_title(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[0].startswith("a")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_non_string_cells_converted(self):
        text = format_table(["x", "y"], [[1, 2.5]])
        assert "1" in text and "2.5" in text
