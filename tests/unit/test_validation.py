"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fitted,
    check_labels,
    check_matrix,
    check_positive_int,
    check_probability,
    check_same_shape,
)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_minimum_override(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.5, "x")


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_exclusive_one(self):
        with pytest.raises(ValueError):
            check_probability(1.0, "p", inclusive_one=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_type(self):
        with pytest.raises(TypeError):
            check_probability("0.5", "p")


class TestCheckMatrix:
    def test_promotes_1d(self):
        matrix = check_matrix([1.0, 2.0, 3.0], "m")
        assert matrix.shape == (1, 3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((2, 2, 2)), "m")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((0, 3)), "m")

    def test_column_check(self):
        with pytest.raises(ValueError):
            check_matrix(np.zeros((2, 3)), "m", n_columns=4)


class TestCheckLabels:
    def test_basic(self):
        labels = check_labels([0, 1, 2], 3)
        assert labels.dtype == np.int64

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_labels([0, 1], 3)

    def test_negative(self):
        with pytest.raises(ValueError):
            check_labels([0, -1, 2], 3)

    def test_float_labels_that_are_integral(self):
        labels = check_labels(np.array([0.0, 1.0]), 2)
        assert labels.tolist() == [0, 1]

    def test_non_integral_floats_rejected(self):
        with pytest.raises(ValueError):
            check_labels(np.array([0.5, 1.0]), 2)

    def test_num_classes_bound(self):
        with pytest.raises(ValueError):
            check_labels([0, 3], 2, n_classes=3)


class TestCheckFittedAndShape:
    def test_check_fitted(self):
        class Model:
            attribute = None

        with pytest.raises(RuntimeError):
            check_fitted(Model(), "attribute")

    def test_check_fitted_passes(self):
        class Model:
            attribute = 3

        check_fitted(Model(), "attribute")

    def test_same_shape(self):
        check_same_shape(np.zeros(3), np.ones(3), ("a", "b"))
        with pytest.raises(ValueError):
            check_same_shape(np.zeros(3), np.ones(4), ("a", "b"))
